package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/slurm"
	"repro/internal/storage"
)

// Fig1Row is one node-count point of the weak-scaling study: the
// distribution of per-task completion times (seconds since submission).
type Fig1Row struct {
	Nodes, Tasks               int
	P25, Median, P75, P90, Max float64
}

// fig1TasksPerNode matches the paper: 128 parallel instances per node,
// one per CPU core.
const fig1TasksPerNode = 128

// fig1NodeCounts are the x-axis points (full scale).
var fig1NodeCounts = []int{1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000}

// fig1QuickNodeCounts preserve the shape at 1/10 the node count.
var fig1QuickNodeCounts = []int{100, 300, 500, 700, 900}

// fig1NodeGroups caps how many logical node groups a weak-scaling point
// is partitioned into. The group count is part of the model definition
// (it fixes the event order), so it must not depend on Options.Shards;
// 64 groups keep every shard count up to 64 load-balanced while leaving
// per-group event heaps small.
const fig1NodeGroups = 64

// Fig1WeakScaling reproduces Fig 1: per-node GNU-Parallel instances each
// launching 128 trivial hostname+timestamp tasks that write stdout to
// node-local NVMe, with the aggregate flushed to Lustre at the end. Tail
// delays (allocation, NVMe availability, I/O) are injected per the
// paper's stated outlier causes; larger runs sample the tail more often,
// which is exactly why the paper saw greater variance at 9,000 nodes.
func Fig1WeakScaling(opts Options) []Fig1Row {
	counts := fig1NodeCounts
	if opts.Quick {
		counts = fig1QuickNodeCounts
	}
	rows := make([]Fig1Row, len(counts))
	sweep(len(counts), opts.Workers, func(i int) {
		rows[i] = fig1Run(opts, counts[i])
	})
	return rows
}

// Fig1Point runs a single node-count point of the weak-scaling study —
// the entry used by the full-scale smoke test and benchmark harness.
func Fig1Point(opts Options, nodes int) Fig1Row { return fig1Run(opts, nodes) }

func fig1Run(opts Options, nodes int) Fig1Row {
	row, _, _ := fig1Sim(opts, nodes, fig1TasksPerNode, fmt.Sprintf("fig1/%d", nodes))
	return row
}

// fig1Sim builds one weak-scaling point on the sharded DES and runs it
// to completion, returning the row, the engine (for kernel-progress
// inspection), and the final virtual time (the point's makespan).
//
// The model is group-partitioned: group 0 hosts cluster-shared services
// (Lustre), groups 1..N host the nodes. Every random stream derives
// from a base RNG by stable identity — per-node substreams, never
// shared draw sequences — and the only cross-group coupling is the
// final stdout flush to Lustre, posted with StageLookahead latency. The
// row is therefore a pure function of (seed, nodes, tasksPerNode),
// bit-identical at every Options.Shards value.
func fig1Sim(opts Options, nodes, tasksPerNode int, label string) (Fig1Row, *sim.ShardedEngine, sim.Time) {
	seed := opts.Seed + uint64(nodes)
	ngroups := fig1NodeGroups
	if ngroups > nodes {
		ngroups = nodes
	}
	prof := cluster.Frontier()
	se := sim.NewSharded(seed, 1+ngroups, opts.Shards)
	se.SetLookahead(prof.StageLookahead)
	base := sim.NewRNG(seed)
	c := cluster.NewSharded(se, prof, nodes, base, cluster.WithLustre(storage.LustreProfile()))
	if opts.OnSharded != nil {
		opts.OnSharded(label, se)
	}

	schedCfg := slurm.DefaultConfig()
	schedCfg.AllocTailProb = 0.002
	schedCfg.AllocTailScale = 40 * time.Second
	// The allocation plan — the same draws Allocate makes — is
	// precomputed at build time, so each node can be scheduled directly
	// on its group engine at its ready time instead of being fanned out
	// by a scheduler process living on one engine.
	_, ready := slurm.PlanReady(base.Split("slurm"), schedCfg, nodes, 0)

	look := prof.StageLookahead
	// Per-group completion samples, merged in group order after the
	// run: groups share no mutable state while the simulation runs.
	groupEnds := make([]metrics.Sample, 1+ngroups)
	for i, node := range c.Nodes {
		node := node
		e := node.Eng
		g := node.Group
		ends := &groupEnds[g]
		nvmeRNG := base.Substream("fig1/nvme", uint64(i))
		payloadRNG := base.Substream("fig1/payload", uint64(i))
		e.SpawnAt(ready[i], node.Hostname(), func(np *sim.Proc) {
			// NVMe availability delay (mount/format of the
			// node-local drive), with a rare long tail.
			// Heavy-tailed (Pareto) so the observed maximum
			// grows with node count: more nodes sample the
			// tail more often — the paper's 7,000+-node
			// outlier effect.
			setup := nvmeRNG.Jitter(8*time.Second, 0.6)
			if nvmeRNG.Bernoulli(0.003) {
				// Truncated: a node stuck longer than ~9min
				// would be drained by the facility.
				tail := sim.Dur(nvmeRNG.Pareto(25, 1.1))
				if tail > 520*time.Second {
					tail = 520 * time.Second
				}
				setup += tail
			}
			np.Sleep(setup)

			tasks := make([]cluster.Task, tasksPerNode)
			for t := range tasks {
				d := time.Duration(payloadRNG.LogNormal(-1.6, 0.5) * float64(time.Second))
				// Flow payload: the million-task hot loop runs with
				// no goroutine per task (see sim.Flow).
				tasks[t] = cluster.Task{FlowPayload: func(fl *sim.Flow, tc cluster.TaskContext) {
					fl.Sleep(d) // the hostname+date one-liner
					tc.Node.NVMe.FlowCreateAndWrite(fl, 256)
				}}
			}
			node.RunParallel(np, cluster.InstanceConfig{
				Jobs: tasksPerNode,
				OnResult: func(r cluster.TaskResult) {
					ends.Add(r.End.Seconds())
				},
			}, tasks)
			// Flush the aggregated stdout to Lustre (the
			// best-practice final copy): a staging RPC to the
			// shared-storage group, acknowledged with a reply post —
			// both legs carry the declared StageLookahead latency.
			flushed := sim.NewCounter(e, 1)
			se.Post(g, 0, look, func() {
				c.Eng.Spawn("lustre-flush", func(lp *sim.Proc) {
					c.Lustre.CreateAndWrite(lp, 1<<20)
					se.Post(0, g, look, flushed.Done)
				})
			})
			flushed.Wait(np)
		})
	}
	end := se.Run()
	if n := se.LiveProcs(); n != 0 {
		panic(fmt.Sprintf("fig1: %d processes still live after run (lost reply?)", n))
	}

	var ends metrics.Sample
	for gi := range groupEnds {
		for _, v := range groupEnds[gi].Values() {
			ends.Add(v)
		}
	}
	row := Fig1Row{
		Nodes:  nodes,
		Tasks:  nodes * tasksPerNode,
		P25:    ends.Percentile(25),
		Median: ends.Median(),
		P75:    ends.Percentile(75),
		P90:    ends.Percentile(90),
		Max:    ends.Max(),
	}
	return row, se, end
}

func fig1Table(opts Options) *metrics.Table {
	rows := Fig1WeakScaling(opts)
	t := metrics.NewTable("Fig 1: weak scaling on Frontier (per-task completion time, s)",
		"nodes", "tasks", "p25", "median", "p75", "p90", "max")
	for _, r := range rows {
		t.AddRow(r.Nodes, r.Tasks,
			fmt.Sprintf("%.1f", r.P25), fmt.Sprintf("%.1f", r.Median),
			fmt.Sprintf("%.1f", r.P75), fmt.Sprintf("%.1f", r.P90),
			fmt.Sprintf("%.1f", r.Max))
	}
	t.AddNote("paper: median <60s, 75%% <2min at 8,000 nodes; max 561s at 9,000 nodes (1.152M tasks)")
	t.AddNote("tail variance grows with node count because outlier delays (alloc/NVMe/I/O) are sampled more often")
	return t
}

func init() {
	register(Experiment{
		ID:    "fig1",
		Paper: "Weak scaling, 1,000-9,000 Frontier nodes x 128 tasks; median <1min, max 561s @ 9,000 nodes",
		Run:   fig1Table,
	})
}
