package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/transfer"
)

// DTNRow is one data-motion strategy's outcome.
type DTNRow struct {
	Method       string
	Files        int
	GB           float64
	MakespanS    float64
	Speedup      float64
	NodeMbpsMean float64
}

// DataMotion reproduces §IV-E: migrating a project tree with (a) one
// sequential rsync, (b) a conventional WMS staging protocol, and (c) the
// paper's pattern — `find | driver.sh` sharding across an 8-node DTN
// cluster, 32 rsync streams per node (256-way parallel transfer).
func DataMotion(opts Options) []DTNRow {
	nfiles, meanSize := 6000, int64(8<<20)
	if opts.Quick {
		nfiles = 1200
	}
	tree := transfer.GenerateTree(nfiles, meanSize, opts.Seed)
	files := tree.Files()

	run := func(f func(p *sim.Proc, e *sim.Engine) transfer.Report) transfer.Report {
		e := sim.NewEngine(opts.Seed + 55)
		var rep transfer.Report
		e.Spawn("driver", func(p *sim.Proc) { rep = f(p, e) })
		e.Run()
		return rep
	}
	newDTNs := func(e *sim.Engine, n int) []*transfer.DTNNode {
		c := cluster.New(e, cluster.DTN(), n, cluster.WithoutNVMe())
		out := make([]*transfer.DTNNode, n)
		for i, node := range c.Nodes {
			out[i] = transfer.NewDTNNode(node)
		}
		return out
	}

	seq := run(func(p *sim.Proc, e *sim.Engine) transfer.Report {
		return transfer.RunSequential(p, newDTNs(e, 1)[0], files, nil, nil)
	})
	wmsRep := run(func(p *sim.Proc, e *sim.Engine) transfer.Report {
		return transfer.RunWMSProtocol(p, newDTNs(e, 8), files, 2, nil, nil)
	})
	par := run(func(p *sim.Proc, e *sim.Engine) transfer.Report {
		return transfer.RunParallelDTN(p, newDTNs(e, 8), files, 32, nil, nil)
	})

	row := func(method string, r transfer.Report) DTNRow {
		var mbps float64
		for _, v := range r.NodeThroughputMbps() {
			mbps += v
		}
		if len(r.NodeBytes) > 0 {
			mbps /= float64(len(r.NodeBytes))
		}
		return DTNRow{
			Method: method, Files: r.Files, GB: float64(r.Bytes) / 1e9,
			MakespanS:    r.Makespan.Seconds(),
			Speedup:      seq.Makespan.Seconds() / r.Makespan.Seconds(),
			NodeMbpsMean: mbps,
		}
	}
	return []DTNRow{
		row("sequential rsync", seq),
		row("WMS staging protocol (8 nodes x 2 streams)", wmsRep),
		row("parallel DTN (8 nodes x 32 rsync = 256 streams)", par),
	}
}

func dtnTable(opts Options) *metrics.Table {
	rows := DataMotion(opts)
	t := metrics.NewTable("§IV-E: data motion across parallel filesystems",
		"method", "files", "GB", "makespan_s", "speedup_vs_seq", "node_Mb_per_s")
	for _, r := range rows {
		t.AddRow(r.Method, r.Files, fmt.Sprintf("%.1f", r.GB),
			fmt.Sprintf("%.0f", r.MakespanS), fmt.Sprintf("%.1fx", r.Speedup),
			fmt.Sprintf("%.0f", r.NodeMbpsMean))
	}
	t.AddNote("paper: ~200x over sequential, >10x over WMS transfer protocols, 2,385 Mb/s per node at 32 streams")
	return t
}

func init() {
	register(Experiment{
		ID:    "dtn",
		Paper: "Data motion: 256-stream DTN transfer, 200x vs sequential, >10x vs WMS, 2,385 Mb/s/node",
		Run:   dtnTable,
	})
}
