package experiments

import (
	"fmt"
	"time"

	"repro/internal/metrics"
)

// WeakScaleRow is one extreme-scale weak-scaling point: the Fig-1-shaped
// workload pushed to node counts the serial kernel alone could not
// turn around interactively. Virtual columns (Tasks, MakespanS) are
// deterministic; WallS/EventsPerSec measure the host and vary run to run.
type WeakScaleRow struct {
	Nodes, Shards, Tasks int
	// MakespanS is the final virtual time of the point, seconds.
	MakespanS float64
	// Events counts DES events executed; Epochs counts conservative
	// synchronization windows the coordinator ran.
	Events, Epochs uint64
	// WallS is the measured wall-clock of the point; EventsPerSec is
	// Events/WallS — the kernel's raw event throughput on this host.
	WallS, EventsPerSec float64
}

// weakScaleCounts are the extreme-scale x-axis points: up to 100,000
// nodes, an order of magnitude past the paper's largest physical run.
var weakScaleCounts = []int{25000, 50000, 100000}

// weakScaleQuickCounts preserve the shape at 1/10 the node count.
var weakScaleQuickCounts = []int{2500, 5000, 10000}

// weakScaleTasksPerNode trades per-node task count down (vs Fig 1's 128)
// so the 100k-node point stays within a CI smoke budget while the
// node-level machinery — allocation stagger, NVMe setup tails, staging
// flushes — runs at full population.
const weakScaleTasksPerNode = 16

// WeakScalePoint runs one extreme-scale point and reports both the
// deterministic virtual outcome and measured kernel throughput.
func WeakScalePoint(opts Options, nodes, tasksPerNode int) WeakScaleRow {
	start := time.Now()
	_, se, end := fig1Sim(opts, nodes, tasksPerNode, fmt.Sprintf("weakscale/%d", nodes))
	wall := time.Since(start)

	row := WeakScaleRow{
		Nodes:     nodes,
		Shards:    se.NumShards(),
		Tasks:     nodes * tasksPerNode,
		MakespanS: end.Seconds(),
		WallS:     wall.Seconds(),
	}
	for _, st := range se.Snapshot() {
		row.Events += st.Events
		if st.Epochs > row.Epochs {
			row.Epochs = st.Epochs
		}
	}
	if row.WallS > 0 {
		row.EventsPerSec = float64(row.Events) / row.WallS
	}
	return row
}

func weakScaleTable(opts Options) *metrics.Table {
	counts := weakScaleCounts
	tasksPer := weakScaleTasksPerNode
	if opts.Quick {
		counts = weakScaleQuickCounts
		tasksPer = tasksPer / 2
	}
	t := metrics.NewTable("Weak scaling at extreme scale: sharded DES kernel (100k-node class)",
		"nodes", "tasks", "shards", "makespan_s", "events", "epochs", "wall_s", "events_per_s")
	for _, n := range counts {
		r := WeakScalePoint(opts, n, tasksPer)
		t.AddRow(r.Nodes, r.Tasks, r.Shards,
			fmt.Sprintf("%.1f", r.MakespanS), r.Events, r.Epochs,
			fmt.Sprintf("%.2f", r.WallS), fmt.Sprintf("%.3g", r.EventsPerSec))
	}
	t.AddNote("makespan/events/epochs are seed-deterministic at every shard count; wall_s and events_per_s measure this host")
	t.AddNote("shards=0 is the serial oracle; set Options.Shards (benchall -shards) to engage the parallel kernel")
	return t
}

func init() {
	register(Experiment{
		ID:    "weakscale",
		Paper: "Beyond the paper: 25k-100k node weak scaling on the sharded conservative-lookahead DES kernel",
		Run:   weakScaleTable,
	})
}
