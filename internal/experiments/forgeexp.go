package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"repro/internal/args"
	"repro/internal/core"
	"repro/internal/forge"
	"repro/internal/metrics"
)

// ForgeRow is one parallelism point of the real-execution curation sweep.
type ForgeRow struct {
	Jobs       int
	Docs       int
	Kept       int
	WallS      float64
	DocsPerS   float64
	SpeedupVs1 float64
}

// ForgeCuration runs the §IV-C curation pipeline for real (actual text
// processing on this machine) across a -j sweep, demonstrating the
// pattern and measuring scaling. As in the real FORGE preprocessing, the
// unit of parallelism is a file shard (a batch of documents), not a
// single document — per-task work must dominate dispatch cost (the Fig 3
// utilization-floor lesson applied to a real workload). These numbers
// are wall-clock and machine-dependent; the shape (speedup growing with
// -j until core count) is what is checked against.
func ForgeCuration(opts Options) []ForgeRow {
	nDocs := 40_000
	if opts.Quick {
		nDocs = 6_000
	}
	const shard = 500 // documents per task ("one input file")
	corpus := forge.GenerateCorpus(nDocs, opts.Seed)

	jobsSweep := []int{1, 2, 4, 8}
	if mx := runtime.GOMAXPROCS(0); mx >= 16 {
		jobsSweep = append(jobsSweep, 16)
	}
	var rows []ForgeRow
	var base float64
	for _, jobs := range jobsSweep {
		pl := forge.NewPipeline()
		runner := core.FuncRunner(func(ctx context.Context, job *core.Job) ([]byte, error) {
			// Curate one shard; drops are per-document, so the
			// task succeeds unless the whole shard is broken.
			for _, raw := range job.Args {
				if doc, err := pl.Process(raw); err == nil {
					// Marshal to exercise the full output path.
					if _, merr := json.Marshal(doc); merr != nil {
						return nil, merr
					}
				}
			}
			return nil, nil
		})
		spec, _ := core.NewSpec("", jobs)
		eng, _ := core.NewEngine(spec, runner)
		start := time.Now()
		_, _, err := eng.Run(context.Background(), args.ChunkN(args.Literal(corpus...), shard))
		if err != nil {
			panic(err)
		}
		wall := time.Since(start).Seconds()
		if jobs == 1 {
			base = wall
		}
		st := pl.Stats.Snapshot()
		rows = append(rows, ForgeRow{
			Jobs: jobs, Docs: st.Processed, Kept: st.Kept,
			WallS: wall, DocsPerS: float64(st.Processed) / wall,
			SpeedupVs1: base / wall,
		})
	}
	return rows
}

func forgeTable(opts Options) *metrics.Table {
	rows := ForgeCuration(opts)
	t := metrics.NewTable("§IV-C: FORGE data curation throughput (real execution, -j sweep)",
		"-j", "docs", "kept", "wall_s", "docs_per_s", "speedup")
	for _, r := range rows {
		t.AddRow(r.Jobs, r.Docs, r.Kept, fmt.Sprintf("%.2f", r.WallS),
			fmt.Sprintf("%.0f", r.DocsPerS), fmt.Sprintf("%.1fx", r.SpeedupVs1))
	}
	t.AddNote("real wall-clock; speedup is bounded by this machine's %d usable core(s) — the paper reports the pattern (concurrent cleaning/enrichment), not absolute rates",
		runtime.GOMAXPROCS(0))
	return t
}

func init() {
	register(Experiment{
		ID:    "forge",
		Paper: "FORGE curation: parallel cleaning/dedup of the publication corpus",
		Run:   forgeTable,
	})
}
