package experiments

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/container"
	"repro/internal/sim"
	"repro/internal/storage"
)

func containerShifter(e *sim.Engine) *container.Runtime { return container.Shifter(e) }
func containerPodman(e *sim.Engine) *container.Runtime  { return container.PodmanHPC(e) }

// lustreProfile aliases the storage profile for experiment files.
func lustreProfile() storage.Config { return storage.LustreProfile() }

// clusterForDispatch builds n Frontier nodes without shared storage, for
// dispatch-rate experiments.
func clusterForDispatch(e *sim.Engine, n int) []*cluster.Node {
	return cluster.New(e, cluster.Frontier(), n).Nodes
}

func instanceCfg() cluster.InstanceConfig {
	return cluster.InstanceConfig{Jobs: 128}
}

func nullTasks(n int) []cluster.Task { return cluster.NullTasks(n) }

// Container-runtime constructors in function-value form for launchRateRun.
var (
	mkShifter = containerShifter
	mkPodman  = containerPodman
)

// sweep runs fn(0..n-1) on at most workers concurrent goroutines and
// waits for all of them. Each index must be independent (its own engine,
// its own output slot); callers write results by index so the output
// order — and, with per-point seeding, the bytes — never depend on the
// worker count. workers <= 1 degrades to a plain sequential loop.
//
// A panic inside fn is caught on the worker, the remaining points are
// abandoned, and after all workers join the first panic is re-raised on
// the caller with the failing point index and the original stack. (A
// naive worker pool would instead kill the worker goroutine without its
// done-send and deadlock the caller — and a sweep point's panic would
// name a random goroutine, not the point.)
func sweep(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	done := make(chan struct{})
	var failed atomic.Bool
	var firstPanic sync.Once
	var panicIdx int
	var panicVal any
	var panicStack []byte
	runPoint := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				firstPanic.Do(func() {
					panicIdx, panicVal = i, r
					panicStack = debug.Stack()
				})
				failed.Store(true)
			}
		}()
		fn(i)
	}
	for w := 0; w < workers; w++ {
		go func() {
			// Always drain idx, even after a failure: the feeder may
			// already have queued indices, and an exiting worker must
			// not strand them on the channel.
			for i := range idx {
				if !failed.Load() {
					runPoint(i)
				}
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < n; i++ {
		if failed.Load() {
			break
		}
		idx <- i
	}
	close(idx)
	for w := 0; w < workers; w++ {
		<-done
	}
	if panicVal != nil {
		panic(fmt.Sprintf("experiments: sweep point %d panicked: %v\n%s", panicIdx, panicVal, panicStack))
	}
}
