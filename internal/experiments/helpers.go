package experiments

import (
	"repro/internal/cluster"
	"repro/internal/container"
	"repro/internal/sim"
	"repro/internal/storage"
)

func containerShifter(e *sim.Engine) *container.Runtime { return container.Shifter(e) }
func containerPodman(e *sim.Engine) *container.Runtime  { return container.PodmanHPC(e) }

// lustreProfile aliases the storage profile for experiment files.
func lustreProfile() storage.Config { return storage.LustreProfile() }

// clusterForDispatch builds n Frontier nodes without shared storage, for
// dispatch-rate experiments.
func clusterForDispatch(e *sim.Engine, n int) []*cluster.Node {
	return cluster.New(e, cluster.Frontier(), n).Nodes
}

func instanceCfg() cluster.InstanceConfig {
	return cluster.InstanceConfig{Jobs: 128}
}

func nullTasks(n int) []cluster.Task { return cluster.NullTasks(n) }

// Container-runtime constructors in function-value form for launchRateRun.
var (
	mkShifter = containerShifter
	mkPodman  = containerPodman
)
