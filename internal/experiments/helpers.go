package experiments

import (
	"repro/internal/cluster"
	"repro/internal/container"
	"repro/internal/sim"
	"repro/internal/storage"
)

func containerShifter(e *sim.Engine) *container.Runtime { return container.Shifter(e) }
func containerPodman(e *sim.Engine) *container.Runtime  { return container.PodmanHPC(e) }

// lustreProfile aliases the storage profile for experiment files.
func lustreProfile() storage.Config { return storage.LustreProfile() }

// clusterForDispatch builds n Frontier nodes without shared storage, for
// dispatch-rate experiments.
func clusterForDispatch(e *sim.Engine, n int) []*cluster.Node {
	return cluster.New(e, cluster.Frontier(), n).Nodes
}

func instanceCfg() cluster.InstanceConfig {
	return cluster.InstanceConfig{Jobs: 128}
}

func nullTasks(n int) []cluster.Task { return cluster.NullTasks(n) }

// Container-runtime constructors in function-value form for launchRateRun.
var (
	mkShifter = containerShifter
	mkPodman  = containerPodman
)

// sweep runs fn(0..n-1) on at most workers concurrent goroutines and
// waits for all of them. Each index must be independent (its own engine,
// its own output slot); callers write results by index so the output
// order — and, with per-point seeding, the bytes — never depend on the
// worker count. workers <= 1 degrades to a plain sequential loop.
func sweep(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			for i := range idx {
				fn(i)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	for w := 0; w < workers; w++ {
		<-done
	}
}
