package experiments

import (
	"fmt"
	"time"

	"repro/internal/celeritas"
	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Fig2Row is one point of the Celeritas GPU weak-scaling study.
type Fig2Row struct {
	Nodes, GPUs, Tasks int
	MakespanS          float64
	Contention         int
}

var fig2NodeCounts = []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}

// Fig2GPUScaling reproduces Fig 2: 10-100 Frontier nodes, 8 Celeritas
// processes per node pinned 1:1 to GPUs via the {%} slot -> device
// binding. The expectation is flat (linear weak-scaling) makespans with
// variance under ~10 s, and zero device contention.
func Fig2GPUScaling(opts Options) []Fig2Row {
	counts := fig2NodeCounts
	if opts.Quick {
		counts = []int{10, 40, 70, 100}
	}
	cfg := celeritas.DefaultConfig("fig2")
	cfg.Photons = 2_000_000_000 // ~100 s of GPU kernel at 2e7 histories/s

	rows := make([]Fig2Row, 0, len(counts))
	for _, n := range counts {
		rows = append(rows, fig2Run(opts, n, cfg))
	}
	return rows
}

func fig2Run(opts Options, nodes int, ccfg celeritas.Config) Fig2Row {
	e := sim.NewEngine(opts.Seed + uint64(nodes)*7)
	c := cluster.New(e, cluster.Frontier(), nodes)
	kernelRNG := e.RNG().Split("fig2/kernel")

	var firstStart, lastEnd sim.Time
	firstStart = sim.Forever
	contention := 0
	wg := sim.NewCounter(e, nodes)
	for _, node := range c.Nodes {
		node := node
		e.Spawn(node.Hostname(), func(np *sim.Proc) {
			tasks := make([]cluster.Task, node.Profile.GPUs)
			for t := range tasks {
				d := kernelRNG.Jitter(celeritas.Cost(ccfg), 0.02)
				tasks[t] = cluster.Task{Payload: func(tp *sim.Proc, tc cluster.TaskContext) error {
					dev, err := tc.Node.GPUs.Device(gpu.SlotDevice(tc.Slot))
					if err != nil {
						return err
					}
					dev.Exec(tp, d)
					return nil
				}}
			}
			rep := node.RunParallel(np, cluster.InstanceConfig{Jobs: node.Profile.GPUs}, tasks)
			if rep.FirstStart < firstStart {
				firstStart = rep.FirstStart
			}
			if rep.LastEnd > lastEnd {
				lastEnd = rep.LastEnd
			}
			wg.Done()
		})
	}
	e.Spawn("collect", func(p *sim.Proc) { wg.Wait(p) })
	e.Run()
	for _, node := range c.Nodes {
		contention += node.GPUs.TotalContention()
	}
	return Fig2Row{
		Nodes: nodes, GPUs: nodes * 8, Tasks: nodes * 8,
		MakespanS:  (lastEnd - firstStart).Seconds(),
		Contention: contention,
	}
}

func fig2Table(opts Options) *metrics.Table {
	rows := Fig2GPUScaling(opts)
	t := metrics.NewTable("Fig 2: Celeritas weak scaling on Frontier GPU nodes",
		"nodes", "gpus", "tasks", "makespan_s", "gpu_contention")
	var s metrics.Sample
	for _, r := range rows {
		t.AddRow(r.Nodes, r.GPUs, r.Tasks, fmt.Sprintf("%.1f", r.MakespanS), r.Contention)
		s.Add(r.MakespanS)
	}
	spread := time.Duration((s.Max() - s.Min()) * float64(time.Second))
	t.AddNote("makespan spread across node counts: %.1fs (paper: variance <10s; linear weak scaling)", spread.Seconds())
	t.AddNote("zero GPU contention confirms {%%}-based 1-process-1-GPU isolation")
	return t
}

func init() {
	register(Experiment{
		ID:    "fig2",
		Paper: "Celeritas GPU weak scaling, 10-100 nodes x 8 GPUs: linear, variance <10s",
		Run:   fig2Table,
	})
}
