package experiments

import (
	"context"
	"testing"
	"time"

	"repro/internal/args"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/wms"
)

// TestModelCrossValidation checks the simulator against reality: the
// same task mix executed (a) by the real core engine with sleeping
// payloads and (b) by the virtual greedy model must produce makespans
// that agree within scheduling noise. This is the evidence that the
// simulated figures exercise the same dispatch semantics as real runs.
func TestModelCrossValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock timing test")
	}
	const slots = 4
	rng := sim.NewRNG(77)
	durations := make([]time.Duration, 40)
	for i := range durations {
		durations[i] = time.Duration(rng.Uniform(5, 25)) * time.Millisecond
	}

	// Virtual execution.
	e := sim.NewEngine(1)
	var virtual wms.Report
	e.Spawn("driver", func(p *sim.Proc) {
		virtual = wms.RunGreedy(p, slots, 0, durations)
	})
	e.Run()

	// Real execution: same durations through the real engine.
	runner := core.FuncRunner(func(ctx context.Context, job *core.Job) ([]byte, error) {
		time.Sleep(durations[job.Seq-1])
		return nil, nil
	})
	spec, _ := core.NewSpec("", slots)
	eng, _ := core.NewEngine(spec, runner)
	items := make([]string, len(durations))
	start := time.Now()
	stats, _, err := eng.Run(context.Background(), args.Literal(items...))
	if err != nil || stats.Succeeded != len(durations) {
		t.Fatalf("stats=%+v err=%v", stats, err)
	}
	real := time.Since(start)

	ratio := float64(real) / float64(virtual.Makespan)
	if ratio < 0.85 || ratio > 2.0 {
		t.Fatalf("real %v vs virtual %v (ratio %.2f): model diverged from the engine",
			real, virtual.Makespan, ratio)
	}
	t.Logf("virtual %v, real %v (ratio %.2f)", virtual.Makespan, real, ratio)
}
