package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/slurm"
)

// StragglerRow summarizes the straggler/preemption scenario: a
// population of nodes where a few dispatch tasks far slower than their
// peers and a few are preempted mid-run (spot reclamation, hardware
// drain) and later recovered.
type StragglerRow struct {
	Nodes, Tasks int
	// Stragglers dispatch with a 4-12x per-task launch cost;
	// Preempted nodes crash mid-run and recover after a downtime draw.
	Stragglers, Preempted int
	// Failed counts tasks lost to crashed nodes (ErrNodeDown).
	Failed int
	// Completion-time percentiles (s) over successful tasks.
	P50, P90, P99, Max float64
}

// stragglerRun builds the scenario on the sharded DES. Group 0 hosts
// the facility's reclaimer: it decides at build time — from its own
// streams, in node order — which nodes straggle and which get
// preempted, then delivers Fail/Recover into the victims' groups as
// cross-group posts carrying the declared StageLookahead latency. Like
// fig1Sim, the row is bit-identical at every Options.Shards value.
func stragglerRun(opts Options, nodes, tasksPerNode int) StragglerRow {
	seed := opts.Seed*0x9e3779b9 + uint64(nodes)
	ngroups := fig1NodeGroups
	if ngroups > nodes {
		ngroups = nodes
	}
	prof := cluster.Frontier()
	se := sim.NewSharded(seed, 1+ngroups, opts.Shards)
	se.SetLookahead(prof.StageLookahead)
	base := sim.NewRNG(seed)
	c := cluster.NewSharded(se, prof, nodes, base)
	if opts.OnSharded != nil {
		opts.OnSharded(fmt.Sprintf("straggler/%d", nodes), se)
	}

	_, ready := slurm.PlanReady(base.Split("slurm"), slurm.DefaultConfig(), nodes, 0)

	look := prof.StageLookahead
	ctl := se.Engine(0)
	spot := base.Split("straggler/preempt")
	slow := base.Split("straggler/slow")
	row := StragglerRow{Nodes: nodes, Tasks: nodes * tasksPerNode}

	type groupAgg struct {
		ends   metrics.Sample
		failed int
	}
	aggs := make([]groupAgg, 1+ngroups)
	for i, node := range c.Nodes {
		node := node
		g := node.Group
		agg := &aggs[g]

		// Straggler draw: a slow image cache, a degraded boot drive —
		// the node launches tasks at a multiple of the calibrated cost.
		dispatch := prof.DispatchCost
		if slow.Bernoulli(0.05) {
			row.Stragglers++
			dispatch = time.Duration(float64(dispatch) * slow.Uniform(4, 12))
		}
		// Preemption draw: the reclaimer posts a crash into the node's
		// group mid-run and a recovery after an exponential downtime.
		if spot.Bernoulli(0.03) {
			row.Preempted++
			tf := sim.Dur(spot.Uniform(10, 60))
			down := spot.DurExp(20 * time.Second)
			ctl.At(tf, func() { se.Post(0, g, look, node.Fail) })
			ctl.At(tf+down, func() { se.Post(0, g, look, node.Recover) })
		}

		payload := base.Substream("straggler/payload", uint64(i))
		node.Eng.SpawnAt(ready[i], node.Hostname(), func(np *sim.Proc) {
			tasks := make([]cluster.Task, tasksPerNode)
			for t := range tasks {
				d := time.Duration(payload.LogNormal(2.3, 0.6) * float64(time.Second))
				tasks[t] = cluster.Task{FlowPayload: func(fl *sim.Flow, tc cluster.TaskContext) {
					fl.Sleep(d)
				}}
			}
			node.RunParallel(np, cluster.InstanceConfig{
				Jobs:         tasksPerNode / 2,
				DispatchCost: dispatch,
				OnResult: func(r cluster.TaskResult) {
					if r.Err != nil {
						agg.failed++
						return
					}
					agg.ends.Add(r.End.Seconds())
				},
			}, tasks)
		})
	}
	se.Run()
	if n := se.LiveProcs(); n != 0 {
		panic(fmt.Sprintf("straggler: %d processes still live after run", n))
	}

	var ends metrics.Sample
	for gi := range aggs {
		row.Failed += aggs[gi].failed
		for _, v := range aggs[gi].ends.Values() {
			ends.Add(v)
		}
	}
	row.P50 = ends.Median()
	row.P90 = ends.Percentile(90)
	row.P99 = ends.Percentile(99)
	row.Max = ends.Max()
	return row
}

func stragglerTable(opts Options) *metrics.Table {
	nodes, tasksPer := 1200, 32
	if opts.Quick {
		nodes, tasksPer = 240, 16
	}
	r := stragglerRun(opts, nodes, tasksPer)
	t := metrics.NewTable("Stragglers and mid-run preemption (sharded DES)",
		"nodes", "tasks", "stragglers", "preempted", "failed", "p50_s", "p90_s", "p99_s", "max_s")
	t.AddRow(r.Nodes, r.Tasks, r.Stragglers, r.Preempted, r.Failed,
		fmt.Sprintf("%.1f", r.P50), fmt.Sprintf("%.1f", r.P90),
		fmt.Sprintf("%.1f", r.P99), fmt.Sprintf("%.1f", r.Max))
	t.AddNote("preemptions are Fail/Recover posts from the group-0 reclaimer; failed tasks observed ErrNodeDown")
	t.AddNote("straggler nodes dispatch at 4-12x the calibrated per-task cost, stretching the p99/max tail")
	return t
}

func init() {
	register(Experiment{
		ID:    "straggler",
		Paper: "Beyond the paper: straggler dispatch and mid-run preemption under the sharded kernel",
		Run:   stragglerTable,
	})
}
