package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/workflow"
)

// Fig7Result carries both pipeline variants.
type Fig7Result struct {
	Staged, LustreOnly workflow.PipelineResult
}

// Fig7DarshanPipeline reproduces the §IV-B staged-prefetch workflow
// (Fig 7): five archive datasets, stage 1 processed from Lustre while
// dataset 2 prefetches to NVMe; stages 2-5 process from NVMe with
// concurrent prefetch and cleanup. Paper: 86 + 4x68 = 358 min staged vs
// 5x86 = 430 min Lustre-only, a 17% improvement.
func Fig7DarshanPipeline(opts Options) Fig7Result {
	run := func(f func(p *sim.Proc, cfg workflow.PipelineConfig) workflow.PipelineResult) workflow.PipelineResult {
		e := sim.NewEngine(opts.Seed + 7)
		lustre := storage.New(e, storage.LustreProfile())
		nvme := storage.New(e, storage.NVMeProfile(0))
		cfg := workflow.DefaultPipelineConfig(lustre, nvme)
		if opts.Quick {
			// Same rates, 1/10 the data: minutes become tenths.
			for i := range cfg.Datasets {
				cfg.Datasets[i].Bytes /= 10
				cfg.Datasets[i].Files /= 10
			}
		}
		var res workflow.PipelineResult
		e.Spawn("pipeline", func(p *sim.Proc) { res = f(p, cfg) })
		e.Run()
		return res
	}
	return Fig7Result{
		Staged:     run(workflow.RunStaged),
		LustreOnly: run(workflow.RunLustreOnly),
	}
}

func fig7Table(opts Options) *metrics.Table {
	res := Fig7DarshanPipeline(opts)
	t := metrics.NewTable("Fig 7 / §IV-B: Darshan log processing — NVMe-staged pipeline vs Lustre-only",
		"stage", "staged_min", "lustre_only_min")
	for i := range res.Staged.Stages {
		t.AddRow(res.Staged.Stages[i].Name,
			fmt.Sprintf("%.1f", res.Staged.Stages[i].Duration().Minutes()),
			fmt.Sprintf("%.1f", res.LustreOnly.Stages[i].Duration().Minutes()))
	}
	staged := res.Staged.Total.Minutes()
	base := res.LustreOnly.Total.Minutes()
	improvement := 0.0
	if base > 0 {
		improvement = (base - staged) / base * 100
	}
	t.AddRow("TOTAL", fmt.Sprintf("%.1f", staged), fmt.Sprintf("%.1f", base))
	t.AddNote("improvement: %.1f%% (paper: 358 vs 430 min = 17%%)", improvement)
	return t
}

func init() {
	register(Experiment{
		ID:    "fig7",
		Paper: "Darshan pipeline: 86 + 4x68 = 358 min staged vs 430 min Lustre-only (17% better)",
		Run:   fig7Table,
	})
}
