package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

// Golden digests of seeded experiment output. They pin the determinism
// contract across kernel changes: the value of every Fig 1 / Fig 3 row
// is a pure function of the seed, so any event reordering introduced by
// a performance rewrite shows up here as a digest mismatch before it
// can silently shift calibrated results.
//
// goldenFig3 dates from the pre-rewrite (container/heap +
// goroutine-per-task) kernel and has survived every rewrite since.
// goldenFig1Quick was re-captured when fig1 moved onto the sharded DES:
// the model's streams changed from shared draw sequences to per-node
// substreams (a necessity for shard-count independence), which is a
// model change, not an ordering artifact. The sharded digest matrix in
// sharded_test.go proves the new value is identical at every shard
// count and GOMAXPROCS.
const (
	goldenFig1Quick = "2a906e0ea6fcc8a84ac4c36f631c257ef3390aa99eb632adac55be11a7952d4b"
	goldenFig3      = "1c6c6da503bb7a7cfa27af5d7c269e380dc3bfd09315eef0a14a8d3f32a43ce3"
)

func digestFig1(opts Options) string {
	rows := Fig1WeakScaling(opts)
	h := sha256.New()
	for _, r := range rows {
		fmt.Fprintf(h, "%d %d %.6f %.6f %.6f %.6f %.6f\n", r.Nodes, r.Tasks, r.P25, r.Median, r.P75, r.P90, r.Max)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func digestFig3(opts Options) string {
	h := sha256.New()
	for _, inst := range []int{1, 2, 4, 8} {
		r := launchRateRun(opts.Seed+uint64(inst), inst, 16, 400, nil)
		fmt.Fprintf(h, "%d %d %d %.9f %.9f %d\n", r.Instances, r.Jobs, r.Tasks, r.RateProcsPerSec, r.MinTaskMS, r.Failures)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestGoldenDigests locks seeded results to the digests captured before
// the kernel rewrite (value-heap events, pooled processes, flow tasks):
// same seed, byte-identical rows.
func TestGoldenDigests(t *testing.T) {
	if got := digestFig1(Options{Seed: 2024, Quick: true}); got != goldenFig1Quick {
		t.Errorf("fig1 quick digest changed:\n got  %s\n want %s", got, goldenFig1Quick)
	}
	if got := digestFig3(Options{Seed: 2024}); got != goldenFig3 {
		t.Errorf("fig3 digest changed:\n got  %s\n want %s", got, goldenFig3)
	}
}

// TestSweepParallelBitIdentical verifies that running sweep points on a
// worker pool is purely a wall-clock lever: every point runs on its own
// engine seeded only by (Seed, point), so the rows — and therefore the
// digest — cannot depend on the worker count.
func TestSweepParallelBitIdentical(t *testing.T) {
	seq := digestFig1(Options{Seed: 2024, Quick: true, Workers: 1})
	par := digestFig1(Options{Seed: 2024, Quick: true, Workers: 4})
	if seq != par {
		t.Fatalf("parallel sweep changed results:\n sequential %s\n workers=4  %s", seq, par)
	}
	if seq != goldenFig1Quick {
		t.Fatalf("sequential sweep digest %s != golden %s", seq, goldenFig1Quick)
	}
}
