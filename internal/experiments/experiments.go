// Package experiments contains one driver per table/figure of the paper's
// evaluation, each returning the same rows/series the paper reports.
// cmd/benchall and the root benchmark suite are thin wrappers over this
// package; EXPERIMENTS.md is generated from its output.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Options tune experiment scale.
type Options struct {
	// Seed drives every random stream; same seed, same tables.
	Seed uint64
	// Quick reduces scale (fewer nodes/tasks) for fast runs and tests;
	// shapes are preserved, absolute counts shrink.
	Quick bool
	// Workers bounds how many sweep points (node counts, instance
	// counts) run concurrently; <=1 means sequential. Each point runs on
	// its own engine with a seed derived only from (Seed, point), so
	// results are bit-identical at any worker count — parallelism is
	// purely a wall-clock lever.
	Workers int
	// Shards is the worker count of the sharded DES kernel for
	// experiments built on it (fig1 weak scaling, weakscale,
	// straggler). 0 runs the serial oracle — every group on one shared
	// engine, the reference event order. Like Workers, it is purely a
	// wall-clock lever: results are bit-identical at every value.
	Shards int
	// OnSharded, when non-nil, observes each sharded engine an
	// experiment constructs, just before its simulation runs. label
	// identifies the scenario point (e.g. "fig1/9000"). cmd/benchall
	// uses this to wire flight-recorder gauges to the live kernel.
	OnSharded func(label string, se *sim.ShardedEngine)
}

// DefaultOptions is the full-scale deterministic configuration.
func DefaultOptions() Options { return Options{Seed: 2024} }

// Experiment is a registered, runnable reproduction of one paper result.
type Experiment struct {
	// ID is the short name used on the command line (e.g. "fig1").
	ID string
	// Paper describes what the paper reports for this experiment.
	Paper string
	// Run executes the experiment and renders its table.
	Run func(Options) *metrics.Table
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("experiments: duplicate id %q", e.ID))
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every registered experiment sorted by id.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
