package experiments

import "testing"

// BenchmarkFig1FullScalePoint times one full-scale Fig 1 point — 9,000
// Frontier nodes x 128 tasks, 1.152M simulated tasks — end to end.
// benchjson pins it to -benchtime=1x (one simulation per run); ns/op is
// then the wall-clock seconds of the paper's largest experiment, and
// tasks/s is the kernel's end-to-end model throughput.
func BenchmarkFig1FullScalePoint(b *testing.B) {
	const nodes = 9000
	for i := 0; i < b.N; i++ {
		row := Fig1Point(DefaultOptions(), nodes)
		if row.Tasks != nodes*fig1TasksPerNode {
			b.Fatalf("task count = %d, want %d", row.Tasks, nodes*fig1TasksPerNode)
		}
	}
	b.ReportMetric(float64(b.N)*float64(nodes*fig1TasksPerNode)/b.Elapsed().Seconds(), "tasks/s")
}
