package experiments

import (
	"testing"
	"time"
)

// weakScaleBudget is the wall-clock ceiling for the 100,000-node smoke
// point in CI. At 16 tasks per node it simulates 1.6M tasks across
// 100k node models; the budget leaves headroom for slow CI hosts while
// still catching kernel-throughput or memory-blowup regressions at the
// scale the sharded kernel exists for.
const weakScaleBudget = 180 * time.Second

// TestWeakScale100kPoint runs the 100,000-node weak-scaling point on
// the parallel kernel end to end — the "100k-node / 100M-task class"
// scale target, budgeted for CI.
func TestWeakScale100kPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-node point skipped in -short mode")
	}
	if raceEnabled {
		// Same reasoning as the full-scale Fig 1 smoke: race
		// instrumentation multiplies wall time; the sharded kernel's
		// race coverage comes from the quick-scale digest matrix that
		// does run under -race.
		t.Skip("100k-node point skipped under -race")
	}
	opts := DefaultOptions()
	opts.Shards = 4
	start := time.Now()
	r := WeakScalePoint(opts, 100000, weakScaleTasksPerNode)
	wall := time.Since(start)
	t.Logf("100k nodes: %d tasks, makespan %.1fs virtual, %d events over %d epochs, wall %.1fs (%.3g events/s)",
		r.Tasks, r.MakespanS, r.Events, r.Epochs, wall.Seconds(), r.EventsPerSec)

	if r.Tasks != 100000*weakScaleTasksPerNode {
		t.Fatalf("task count = %d, want %d", r.Tasks, 100000*weakScaleTasksPerNode)
	}
	// The point must finish in bounded virtual time: every node's tail
	// is capped (~9 min NVMe tail + allocation stagger + payloads), so
	// a makespan beyond an hour means lost replies or runaway models.
	if r.MakespanS <= 0 || r.MakespanS > 3600 {
		t.Errorf("makespan %.1fs out of range", r.MakespanS)
	}
	if r.Events < uint64(r.Tasks) {
		t.Errorf("only %d events for %d tasks — kernel undercounting", r.Events, r.Tasks)
	}
	if r.Epochs == 0 {
		t.Errorf("sharded run reported zero epochs")
	}
	if wall > weakScaleBudget {
		t.Errorf("100k-node point took %.1fs, budget %.0fs", wall.Seconds(), weakScaleBudget.Seconds())
	}
}
