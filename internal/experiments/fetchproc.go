package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workflow"
)

// FetchProcRow compares stage-coupling strategies for the §IV-A
// fetch-process workflow.
type FetchProcRow struct {
	Method    string
	Batches   int
	MakespanS float64
}

// FetchProcess reproduces §IV-A: the getdata/procdata pair linked by a
// queue file (overlapped I/O and compute) versus a hard barrier between
// stages.
func FetchProcess(opts Options) []FetchProcRow {
	cfg := workflow.DefaultFetchProcess()
	if opts.Quick {
		cfg.Batches = 5
	}
	run := func(f func(p *sim.Proc, c workflow.FetchProcessConfig) workflow.FetchProcessResult) workflow.FetchProcessResult {
		e := sim.NewEngine(opts.Seed + 31)
		var res workflow.FetchProcessResult
		e.Spawn("driver", func(p *sim.Proc) { res = f(p, cfg) })
		e.Run()
		return res
	}
	over := run(workflow.RunOverlapped)
	barr := run(workflow.RunBarriered)
	return []FetchProcRow{
		{Method: "queue-linked overlap (tail -f q.proc | parallel)", Batches: over.Processed, MakespanS: over.Makespan.Seconds()},
		{Method: "barrier (fetch all, then process all)", Batches: barr.Processed, MakespanS: barr.Makespan.Seconds()},
	}
}

func fetchprocTable(opts Options) *metrics.Table {
	rows := FetchProcess(opts)
	t := metrics.NewTable("§IV-A: fetch-process workflow — overlapped stages vs barrier",
		"method", "batches", "makespan_s")
	for _, r := range rows {
		t.AddRow(r.Method, r.Batches, fmt.Sprintf("%.0f", r.MakespanS))
	}
	saved := rows[1].MakespanS - rows[0].MakespanS
	t.AddNote("overlap hides ~%.0fs of processing inside fetch intervals; only the final batch's compute remains exposed", saved)
	return t
}

func init() {
	register(Experiment{
		ID:    "fetchproc",
		Paper: "Listing 2/3: asynchronous fetch-process via queue file keeps compute overlapped with I/O",
		Run:   fetchprocTable,
	})
}
