package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/slurm"
)

// SrunRow compares Listing 4 (srun loop) with Listing 5 (parallel
// one-liner) for the Darshan invocation grid.
type SrunRow struct {
	Method    string
	Tasks     int
	MakespanS float64
	LaunchS   float64 // time spent purely launching
}

// SrunVsParallel reproduces the §IV-B ease-of-use comparison with the
// paper's exact workload shape: 12 months x 3 apps = 36 analyzer tasks on
// one node. The srun path launches each task as a Slurm job step with the
// script's defensive `sleep 0.2` throttle; the parallel path dispatches
// all 36 through one instance with -j36.
func SrunVsParallel(opts Options) []SrunRow {
	const tasks = 36
	payload := 60 * time.Second // one analyzer shard's runtime

	// Baseline: Listing 4.
	e1 := sim.NewEngine(opts.Seed + 41)
	sched := slurm.NewScheduler(e1, slurm.DefaultConfig())
	var srunMakespan time.Duration
	e1.Spawn("sbatch", func(p *sim.Proc) {
		srunMakespan = sched.SrunLoopBaseline(p, tasks, 200*time.Millisecond, payload)
	})
	e1.Run()

	// Listing 5: parallel -j36.
	e2 := sim.NewEngine(opts.Seed + 42)
	c := cluster.New(e2, cluster.Frontier(), 1)
	var rep *cluster.Report
	e2.Spawn("driver", func(p *sim.Proc) {
		rep = c.Nodes[0].RunParallel(p, cluster.InstanceConfig{Jobs: tasks},
			cluster.SleepTasks(tasks, func(int) time.Duration { return payload }))
	})
	end2 := e2.Run()

	return []SrunRow{
		{
			Method: "srun-loop (Listing 4)", Tasks: tasks,
			MakespanS: srunMakespan.Seconds(),
			LaunchS:   (srunMakespan - payload).Seconds(),
		},
		{
			Method: "parallel -j36 (Listing 5)", Tasks: tasks,
			MakespanS: end2.Seconds(),
			LaunchS:   rep.DispatchBusy.Seconds(),
		},
	}
}

func srunTable(opts Options) *metrics.Table {
	rows := SrunVsParallel(opts)
	t := metrics.NewTable("§IV-B: srun loop vs parallel one-liner (12 months x 3 apps = 36 tasks, 60s each)",
		"method", "tasks", "makespan_s", "launch_overhead_s")
	for _, r := range rows {
		t.AddRow(r.Method, r.Tasks, fmt.Sprintf("%.1f", r.MakespanS), fmt.Sprintf("%.2f", r.LaunchS))
	}
	t.AddNote("the srun path pays >=7.2s of sleep-throttle plus per-step scheduler RPCs; parallel pays ~77ms of dispatch")
	t.AddNote("the paper additionally reports >90%% script-size reduction (Listings 4 vs 5)")
	return t
}

func init() {
	register(Experiment{
		ID:    "srun",
		Paper: "Listing 4 vs 5: srun-loop launch overhead vs parallel one-liner for the 36-task grid",
		Run:   srunTable,
	})
}
