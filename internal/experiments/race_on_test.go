//go:build race

package experiments

// raceEnabled lets the full-scale smoke test skip its wall-clock budget
// when race-detector instrumentation (every channel handoff is traced)
// multiplies the kernel's event cost.
const raceEnabled = true
