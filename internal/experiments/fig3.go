package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/container"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// RateRow is one point of a launch-rate stress test.
type RateRow struct {
	Instances, Jobs int
	Tasks           int
	RateProcsPerSec float64
	// MinTaskMS is the shortest task duration (ms) that still keeps all
	// 256 node threads busy at this launch rate: threads / rate.
	MinTaskMS float64
	Failures  int
}

// launchRateStart schedules one launch-rate point on engine e, drawing
// every model stream from base. The returned row is filled in when the
// point completes: a join process wakes at the instant the last
// instance finishes — the same virtual time e.Run() would return for an
// engine hosting only this point — and computes the rate then. That
// factoring lets several points share one engine, or live on separate
// group engines of a sharded DES, without changing a single row byte.
func launchRateStart(e *sim.Engine, base *sim.RNG, instances, jobs, perInstance int, mkRuntime func(*sim.Engine) *container.Runtime) *RateRow {
	c := cluster.New(e, cluster.PerlmutterCPU(), 1, cluster.WithRand(base))
	node := c.Nodes[0]
	var rt *container.Runtime
	if mkRuntime != nil {
		rt = mkRuntime(e)
	}
	total := instances * perInstance
	row := &RateRow{Instances: instances, Jobs: jobs, Tasks: total}
	wg := sim.NewCounter(e, instances)
	for i := 0; i < instances; i++ {
		e.Spawn(fmt.Sprintf("inst%d", i), func(p *sim.Proc) {
			node.RunParallel(p, cluster.InstanceConfig{Jobs: jobs, Runtime: rt},
				cluster.NullTasks(perInstance))
			wg.Done()
		})
	}
	e.Spawn("join", func(p *sim.Proc) {
		wg.Wait(p)
		rate := metrics.Rate(total, p.Now())
		row.RateProcsPerSec = rate
		if rate > 0 {
			row.MinTaskMS = 256 / rate * 1000
		}
		if rt != nil {
			row.Failures = rt.TotalFailures()
		}
	})
	return row
}

// launchRateRun measures aggregate launch throughput of `instances`
// parallel instances each dispatching `perInstance` null tasks with -j
// jobs, optionally under a container runtime.
func launchRateRun(seed uint64, instances, jobs, perInstance int, mkRuntime func(*sim.Engine) *container.Runtime) RateRow {
	e := sim.NewEngine(seed)
	row := launchRateStart(e, sim.NewRNG(seed), instances, jobs, perInstance, mkRuntime)
	e.Run()
	return *row
}

func fig3Table(opts Options) *metrics.Table {
	perInstance := 2000
	if opts.Quick {
		perInstance = 400
	}
	t := metrics.NewTable("Fig 3: max tasks launched per second on Perlmutter (bare metal)",
		"instances", "-j", "tasks", "procs_per_sec", "min_task_ms_for_full_util")
	insts := []int{1, 2, 4, 8, 16, 32}
	rows := make([]RateRow, len(insts))
	sweep(len(insts), opts.Workers, func(i int) {
		rows[i] = launchRateRun(opts.Seed+uint64(insts[i]), insts[i], 16, perInstance, nil)
	})
	for _, r := range rows {
		t.AddRow(r.Instances, r.Jobs, r.Tasks,
			fmt.Sprintf("%.0f", r.RateProcsPerSec), fmt.Sprintf("%.0f", r.MinTaskMS))
	}
	t.AddNote("paper: 1 instance ~470/s (full 256-thread utilization needs tasks >=545ms); many instances ~6,400/s (tasks >=40ms)")
	return t
}

func fig4Table(opts Options) *metrics.Table {
	perInstance := 1500
	if opts.Quick {
		perInstance = 300
	}
	t := metrics.NewTable("Fig 4: Shifter container launches per second (one Perlmutter CPU node)",
		"instances", "runtime", "procs_per_sec")
	insts := []int{1, 4, 16, 32}
	// Two independent engines per instance count: even indices bare
	// metal, odd indices Shifter.
	rows := make([]RateRow, 2*len(insts))
	sweep(len(rows), opts.Workers, func(i int) {
		inst := insts[i/2]
		if i%2 == 0 {
			rows[i] = launchRateRun(opts.Seed+uint64(inst)*3, inst, 16, perInstance, nil)
		} else {
			rows[i] = launchRateRun(opts.Seed+uint64(inst)*3+1, inst, 16, perInstance, container.Shifter)
		}
	})
	var bareMax, shifterMax float64
	for i, inst := range insts {
		bare, shift := rows[2*i], rows[2*i+1]
		if bare.RateProcsPerSec > bareMax {
			bareMax = bare.RateProcsPerSec
		}
		if shift.RateProcsPerSec > shifterMax {
			shifterMax = shift.RateProcsPerSec
		}
		t.AddRow(inst, "bare-metal", fmt.Sprintf("%.0f", bare.RateProcsPerSec))
		t.AddRow(inst, "shifter", fmt.Sprintf("%.0f", shift.RateProcsPerSec))
	}
	overhead := 0.0
	if bareMax > 0 {
		overhead = (1 - shifterMax/bareMax) * 100
	}
	t.AddNote("shifter ceiling %.0f/s vs bare %.0f/s => %.0f%% startup overhead (paper: ~5,200/s, 19%%)",
		shifterMax, bareMax, overhead)
	return t
}

func fig5Table(opts Options) *metrics.Table {
	perInstance := 300
	if opts.Quick {
		perInstance = 80
	}
	t := metrics.NewTable("Fig 5: Podman-HPC containers launched per second (one Perlmutter CPU node)",
		"-j", "tasks", "procs_per_sec", "failures")
	jobCounts := []int{2, 4, 8, 16, 32}
	rows := make([]RateRow, len(jobCounts))
	sweep(len(jobCounts), opts.Workers, func(i int) {
		rows[i] = launchRateRun(opts.Seed+uint64(jobCounts[i])*11, 4, jobCounts[i], perInstance, container.PodmanHPC)
	})
	for _, r := range rows {
		t.AddRow(r.Jobs, r.Tasks, fmt.Sprintf("%.0f", r.RateProcsPerSec), r.Failures)
	}
	t.AddNote("paper: ceiling ~65/s regardless of -j (two orders of magnitude below Shifter), with namespace/DB-lock/setgid/tmp-dir failures at larger scales")
	return t
}

// FullUtilizationTaskFloor exposes Fig 3's headline numbers directly:
// the minimum task duration keeping a 256-thread node fully utilized at
// single-instance and saturated launch rates.
func FullUtilizationTaskFloor(opts Options) (single, saturated time.Duration) {
	perInstance := 1500
	if opts.Quick {
		perInstance = 300
	}
	one := launchRateRun(opts.Seed+101, 1, 16, perInstance, nil)
	many := launchRateRun(opts.Seed+102, 32, 16, perInstance, nil)
	return time.Duration(one.MinTaskMS * float64(time.Millisecond)),
		time.Duration(many.MinTaskMS * float64(time.Millisecond))
}

func init() {
	register(Experiment{
		ID:    "fig3",
		Paper: "Launch-rate stress: 470/s single instance, ~6,400/s aggregate; 545ms/40ms utilization floors",
		Run:   fig3Table,
	})
	register(Experiment{
		ID:    "fig4",
		Paper: "Shifter container launch ceiling ~5,200/s, 19% startup overhead vs bare metal",
		Run:   fig4Table,
	})
	register(Experiment{
		ID:    "fig5",
		Paper: "Podman-HPC ceiling ~65/s across -j sweep, reliability failures at scale",
		Run:   fig5Table,
	})
}
