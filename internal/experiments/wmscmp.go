package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/wms"
)

// WMSRow compares orchestration overhead between a centralized WMS and
// per-node parallel instances for the same task count.
type WMSRow struct {
	Tasks         int
	WMSOverheadS  float64 // simulated central orchestrator (no compute)
	ParallelTimeS float64 // simulated per-node parallel dispatch (no compute)
	ParallelNodes int
}

// WMSComparison reproduces the §II motivating comparison: Swift/T-style
// central orchestration overhead (500s @ 50k tasks, 5,000s @ 100k) versus
// GNU-Parallel-style decentralized dispatch (128 tasks per node, one
// instance per node) with zero-length payloads in both cases.
func WMSComparison(opts Options) []WMSRow {
	counts := []int{10_000, 50_000, 100_000}
	if opts.Quick {
		counts = []int{10_000, 50_000}
	}
	o := wms.SwiftT()
	var rows []WMSRow
	for _, n := range counts {
		rows = append(rows, WMSRow{
			Tasks:         n,
			WMSOverheadS:  simCentral(opts, o, n),
			ParallelTimeS: simDistributed(opts, n),
			ParallelNodes: (n + 127) / 128,
		})
	}
	return rows
}

func simCentral(opts Options, o wms.Overhead, n int) float64 {
	e := sim.NewEngine(opts.Seed + uint64(n))
	var rep wms.Report
	e.Spawn("wms", func(p *sim.Proc) {
		rep = wms.RunCentral(p, o, n, 128, 0)
	})
	e.Run()
	return rep.Makespan.Seconds()
}

// simDistributed measures dispatch-only time for n tasks sharded 128 per
// node: every node's instance dispatches its 128 tasks concurrently with
// the others (the Listing 1 pattern), so the makespan is one node's
// dispatch time regardless of total scale.
func simDistributed(opts Options, n int) float64 {
	e := sim.NewEngine(opts.Seed + uint64(n) + 1)
	nodes := (n + 127) / 128
	// All nodes behave identically and independently (separate Launch
	// resources); simulating a handful is exact for makespan purposes,
	// but simulate every node when feasible for honesty.
	simNodes := nodes
	if simNodes > 2000 {
		simNodes = 2000
	}
	c := clusterForDispatch(e, simNodes)
	wg := sim.NewCounter(e, simNodes)
	for _, node := range c {
		node := node
		e.Spawn(node.Hostname(), func(p *sim.Proc) {
			node.RunParallel(p, instanceCfg(), nullTasks(128))
			wg.Done()
		})
	}
	end := e.Run()
	return end.Seconds()
}

func fig0WMSTable(opts Options) *metrics.Table {
	rows := WMSComparison(opts)
	t := metrics.NewTable("§II: orchestration overhead — centralized WMS vs per-node parallel instances (no compute, no data)",
		"tasks", "wms_overhead_s", "parallel_dispatch_s", "parallel_nodes")
	for _, r := range rows {
		t.AddRow(r.Tasks, fmt.Sprintf("%.0f", r.WMSOverheadS),
			fmt.Sprintf("%.2f", r.ParallelTimeS), r.ParallelNodes)
	}
	t.AddNote("paper cites WfBench/Swift-T: 500s @ 50k tasks, 5,000s @ 100k; GNU Parallel ran 1.152M tasks end-to-end in 561s max (Fig 1)")
	t.AddNote("per-node dispatch is constant in total scale: 128 tasks x 2.128ms ~ 0.3s + payload/delays")
	return t
}

func init() {
	register(Experiment{
		ID:    "wms",
		Paper: "WMS overhead baseline (500s@50k, 5000s@100k) vs decentralized parallel dispatch",
		Run:   fig0WMSTable,
	})
}
