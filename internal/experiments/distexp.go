package experiments

import (
	"context"
	"fmt"
	"net"
	"time"

	"repro/internal/args"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/metrics"
)

// DistRow is one point of the real distributed-dispatch sweep.
type DistRow struct {
	Workers, SlotsPerWorker int
	Jobs                    int
	JobsPerSec              float64
}

// DistDispatch measures real end-to-end dispatch throughput of the
// engine driving TCP workers on loopback — an extension beyond the
// paper: where Fig 3 measures local fork rate (470/s for GNU Parallel),
// this measures the library's remote-execution path. Wall-clock,
// machine-dependent; the expected shape is throughput growing with
// worker slots until the coordinator or loopback saturates.
func DistDispatch(opts Options) []DistRow {
	jobs := 3000
	if opts.Quick {
		jobs = 800
	}
	var rows []DistRow
	for _, workers := range []int{1, 2, 4} {
		rows = append(rows, distRun(workers, 4, jobs))
	}
	return rows
}

func distRun(workers, slots, jobs int) DistRow {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	noop := core.FuncRunner(func(ctx context.Context, job *core.Job) ([]byte, error) {
		return nil, nil
	})
	var specs []dist.WorkerSpec
	for i := 0; i < workers; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		go dist.Serve(ctx, l, dist.WorkerConfig{
			Name: fmt.Sprintf("w%d", i), Slots: slots, Runner: noop,
		})
		specs = append(specs, dist.WorkerSpec{Addr: l.Addr().String()})
	}
	pool, err := dist.Dial(specs)
	if err != nil {
		panic(err)
	}
	defer pool.Close()

	spec, _ := core.NewSpec("", pool.Slots())
	eng, _ := core.NewEngine(spec, pool)
	items := make([]string, jobs)
	start := time.Now()
	stats, _, err := eng.Run(context.Background(), args.Literal(items...))
	if err != nil || stats.Succeeded != jobs {
		panic(fmt.Sprintf("dist experiment: stats=%+v err=%v", stats, err))
	}
	return DistRow{
		Workers: workers, SlotsPerWorker: slots, Jobs: jobs,
		JobsPerSec: float64(jobs) / time.Since(start).Seconds(),
	}
}

func distTable(opts Options) *metrics.Table {
	rows := DistDispatch(opts)
	t := metrics.NewTable("Extension: real distributed dispatch over TCP workers (loopback)",
		"workers", "slots_each", "jobs", "jobs_per_sec")
	for _, r := range rows {
		t.AddRow(r.Workers, r.SlotsPerWorker, r.Jobs, fmt.Sprintf("%.0f", r.JobsPerSec))
	}
	t.AddNote("real wall-clock on this machine; compare Fig 3's 470 procs/s local fork rate for perl GNU Parallel")
	return t
}

func init() {
	register(Experiment{
		ID:    "dist",
		Paper: "Extension: engine dispatch rate through gopard TCP workers (no paper counterpart)",
		Run:   distTable,
	})
}
