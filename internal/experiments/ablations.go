package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/wms"
)

// Ablations probe the design decisions DESIGN.md §4 calls out.

// ablationStaticTable: greedy slot refill vs xargs-style static pre-split
// under heterogeneous task durations.
func ablationStaticTable(opts Options) *metrics.Table {
	n := 512
	if opts.Quick {
		n = 128
	}
	e := sim.NewEngine(opts.Seed + 71)
	rng := e.RNG().Split("ablation/static")
	durations := make([]time.Duration, n)
	for i := range durations {
		// Heavy-tailed task mix: mostly short, some multi-second.
		durations[i] = rng.DurExp(500 * time.Millisecond)
		if rng.Bernoulli(0.05) {
			durations[i] += rng.DurExp(8 * time.Second)
		}
	}
	// Inputs arrive sorted by size — the common real-world case (ls,
	// find, du output) that makes static chunking cluster all the long
	// tasks into the first workers' chunks.
	sort.Slice(durations, func(i, j int) bool { return durations[i] > durations[j] })
	var static, greedy wms.Report
	e.Spawn("driver", func(p *sim.Proc) {
		greedy = wms.RunGreedy(p, 32, cluster.DispatchCost, durations)
		static = wms.RunStaticSplit(p, 32, cluster.DispatchCost, durations)
	})
	e.Run()

	t := metrics.NewTable("Ablation: greedy slot refill vs static pre-split (heterogeneous tasks)",
		"strategy", "tasks", "slots", "makespan_s")
	t.AddRow("greedy (GNU Parallel model)", n, 32, fmt.Sprintf("%.2f", greedy.Makespan.Seconds()))
	t.AddRow("static split (xargs -P model)", n, 32, fmt.Sprintf("%.2f", static.Makespan.Seconds()))
	t.AddNote("greedy refill absorbs stragglers; static chunks strand short tasks behind long ones (%.1fx)",
		static.Makespan.Seconds()/greedy.Makespan.Seconds())
	return t
}

// ablationCentralTable: one central dispatcher for the full Fig 1 task
// count vs per-node instances (the driver-script sharding).
func ablationCentralTable(opts Options) *metrics.Table {
	nodes := 9000
	if opts.Quick {
		nodes = 900
	}
	total := nodes * 128

	// Central: a single instance must serially dispatch every task at
	// DispatchCost; its makespan is dispatch-bound.
	e1 := sim.NewEngine(opts.Seed + 81)
	c1 := cluster.New(e1, cluster.Frontier(), 1)
	var centralEnd sim.Time
	e1.Spawn("central", func(p *sim.Proc) {
		c1.Nodes[0].RunParallel(p, cluster.InstanceConfig{Jobs: 128}, cluster.NullTasks(total))
		centralEnd = p.Now()
	})
	e1.Run()

	// Distributed: every node dispatches only its 128-task shard.
	distributedS := simDistributed(opts, total)

	t := metrics.NewTable("Ablation: central dispatcher vs per-node instances",
		"architecture", "tasks", "dispatch_makespan_s")
	t.AddRow("central single instance", total, fmt.Sprintf("%.0f", centralEnd.Seconds()))
	t.AddRow(fmt.Sprintf("distributed (%d nodes x 128)", nodes), total, fmt.Sprintf("%.2f", distributedS))
	t.AddNote("a 470/s central dispatcher needs ~%.0f min just to launch %d tasks; sharding first (Listing 1) makes dispatch constant-time in scale",
		centralEnd.Minutes(), total)
	return t
}

// ablationDispatchTable: sensitivity of achievable launch rate and the
// full-utilization task floor to per-dispatch cost.
func ablationDispatchTable(opts Options) *metrics.Table {
	perInstance := 1000
	if opts.Quick {
		perInstance = 250
	}
	costs := []time.Duration{
		500 * time.Microsecond, time.Millisecond, cluster.DispatchCost,
		5 * time.Millisecond, 10 * time.Millisecond,
	}
	t := metrics.NewTable("Ablation: dispatch-cost sensitivity (single instance, 256-thread node)",
		"dispatch_cost_ms", "procs_per_sec", "min_task_ms_for_full_util")
	rates := make([]float64, len(costs))
	sweep(len(costs), opts.Workers, func(i int) {
		e := sim.NewEngine(opts.Seed + 91 + uint64(i))
		c := cluster.New(e, cluster.PerlmutterCPU(), 1)
		e.Spawn("driver", func(p *sim.Proc) {
			c.Nodes[0].RunParallel(p, cluster.InstanceConfig{Jobs: 256, DispatchCost: costs[i]},
				cluster.NullTasks(perInstance))
		})
		rates[i] = metrics.Rate(perInstance, e.Run())
	})
	for i, cost := range costs {
		t.AddRow(fmt.Sprintf("%.3f", cost.Seconds()*1000),
			fmt.Sprintf("%.0f", rates[i]), fmt.Sprintf("%.0f", 256/rates[i]*1000))
	}
	t.AddNote("at the calibrated 2.128ms (GNU Parallel's measured cost) the floor is ~545ms, the paper's Fig 3 number")
	return t
}

// ablationNVMeTable isolates the Fig 1 best practice: per-task stdout to
// NVMe vs directly to Lustre, at a scale where Lustre's metadata service
// saturates.
func ablationNVMeTable(opts Options) *metrics.Table {
	nodes := 256
	if opts.Quick {
		nodes = 64
	}
	run := func(toLustre bool) time.Duration {
		e := sim.NewEngine(opts.Seed + 95)
		c := cluster.New(e, cluster.Frontier(), nodes,
			cluster.WithLustre(lustreProfile()))
		wg := sim.NewCounter(e, nodes)
		for _, node := range c.Nodes {
			node := node
			e.Spawn(node.Hostname(), func(np *sim.Proc) {
				tasks := make([]cluster.Task, 128)
				for t := range tasks {
					tasks[t] = cluster.Task{FlowPayload: func(fl *sim.Flow, tc cluster.TaskContext) {
						fl.Sleep(100 * time.Millisecond)
						if toLustre {
							c.Lustre.FlowCreateAndWrite(fl, 256)
						} else {
							tc.Node.NVMe.FlowCreateAndWrite(fl, 256)
						}
					}}
				}
				node.RunParallel(np, cluster.InstanceConfig{Jobs: 128}, tasks)
				if !toLustre {
					c.Lustre.CreateAndWrite(np, 1<<20) // aggregated flush
				}
				wg.Done()
			})
		}
		return e.Run()
	}
	var nvme, lustre time.Duration
	sweep(2, opts.Workers, func(i int) {
		if i == 0 {
			nvme = run(false)
		} else {
			lustre = run(true)
		}
	})
	t := metrics.NewTable("Ablation: per-task stdout to NVMe (staged) vs directly to Lustre",
		"strategy", "nodes", "tasks", "makespan_s")
	t.AddRow("NVMe + aggregated flush", nodes, nodes*128, fmt.Sprintf("%.1f", nvme.Seconds()))
	t.AddRow("direct small files to Lustre", nodes, nodes*128, fmt.Sprintf("%.1f", lustre.Seconds()))
	t.AddNote("small-file metadata storms on the shared filesystem cost %.1fx; the Fig 1 runs staged stdout on NVMe for this reason",
		lustre.Seconds()/nvme.Seconds())
	return t
}

func init() {
	register(Experiment{
		ID:    "ablation-static",
		Paper: "Design: greedy refill vs static pre-split under heterogeneous tasks",
		Run:   ablationStaticTable,
	})
	register(Experiment{
		ID:    "ablation-central",
		Paper: "Design: central dispatcher vs per-node instances at Fig 1 scale",
		Run:   ablationCentralTable,
	})
	register(Experiment{
		ID:    "ablation-dispatch",
		Paper: "Design: dispatch-cost sensitivity and the utilization task floor",
		Run:   ablationDispatchTable,
	})
	register(Experiment{
		ID:    "ablation-nvme",
		Paper: "Design: NVMe stdout staging vs direct Lustre small files",
		Run:   ablationNVMeTable,
	})
}
