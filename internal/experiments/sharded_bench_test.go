package experiments

import "testing"

// BenchmarkFig1Sharded times the paper's largest weak-scaling point —
// 9,000 Frontier nodes x 128 tasks — on the serial oracle and on the
// 4-shard parallel kernel. benchjson pins it to -benchtime=1x, so
// ns/op is the wall clock of one full-scale simulation per mode and
// the pair feeds the shardGuard speedup/overhead gate. Both modes
// produce bit-identical rows (the digest matrix proves it); only the
// wall clock may differ.
func BenchmarkFig1Sharded(b *testing.B) {
	const nodes = 9000
	for _, mode := range []struct {
		name   string
		shards int
	}{
		{"mode=serial", 0},
		{"mode=shards4", 4},
	} {
		b.Run(mode.name, func(b *testing.B) {
			opts := DefaultOptions()
			opts.Shards = mode.shards
			for i := 0; i < b.N; i++ {
				row := Fig1Point(opts, nodes)
				if row.Tasks != nodes*fig1TasksPerNode {
					b.Fatalf("task count = %d, want %d", row.Tasks, nodes*fig1TasksPerNode)
				}
			}
			b.ReportMetric(float64(b.N)*float64(nodes*fig1TasksPerNode)/b.Elapsed().Seconds(), "tasks/s")
		})
	}
}

// BenchmarkWeakScale100k times the 100,000-node point (1.6M tasks) on
// the parallel kernel — the scale target the sharded DES exists for.
// Not part of the benchjson default set (the CI smoke test covers it);
// run by hand to profile the kernel at full population:
//
//	go test ./internal/experiments/ -run NONE -bench WeakScale100k -benchtime 1x
func BenchmarkWeakScale100k(b *testing.B) {
	opts := DefaultOptions()
	opts.Shards = 4
	for i := 0; i < b.N; i++ {
		r := WeakScalePoint(opts, 100000, weakScaleTasksPerNode)
		if r.Tasks != 100000*weakScaleTasksPerNode {
			b.Fatalf("task count = %d", r.Tasks)
		}
	}
	b.ReportMetric(float64(b.N)*float64(100000*weakScaleTasksPerNode)/b.Elapsed().Seconds(), "tasks/s")
}
