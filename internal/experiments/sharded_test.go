package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// digestFig3Sharded reproduces digestFig3's four points on one sharded
// DES — one point per group, no cross-group traffic — and must produce
// the very same digest as the per-engine serial runs: each point's join
// process records its own group-local completion time, so sharing an
// engine (oracle) or splitting across group engines (sharded) cannot
// change a row byte.
func digestFig3Sharded(opts Options, shards int) string {
	insts := []int{1, 2, 4, 8}
	se := sim.NewSharded(opts.Seed, len(insts), shards)
	se.SetLookahead(cluster.StageLookahead)
	rows := make([]*RateRow, len(insts))
	for idx, inst := range insts {
		rows[idx] = launchRateStart(se.Engine(idx), sim.NewRNG(opts.Seed+uint64(inst)),
			inst, 16, 400, nil)
	}
	se.Run()
	h := sha256.New()
	for _, r := range rows {
		fmt.Fprintf(h, "%d %d %d %.9f %.9f %d\n",
			r.Instances, r.Jobs, r.Tasks, r.RateProcsPerSec, r.MinTaskMS, r.Failures)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestShardedDigestMatrix is the PR's acceptance matrix: the committed
// goldens must come out bit-identical from the parallel kernel at every
// shard count and GOMAXPROCS — determinism by construction, not by luck
// of goroutine scheduling.
func TestShardedDigestMatrix(t *testing.T) {
	shardCounts := []int{1, 2, 4, 8}
	gomax := []int{1, 4}
	if testing.Short() {
		shardCounts = []int{4}
		gomax = []int{4}
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, gmp := range gomax {
		runtime.GOMAXPROCS(gmp)
		for _, shards := range shardCounts {
			if got := digestFig1(Options{Seed: 2024, Quick: true, Shards: shards}); got != goldenFig1Quick {
				t.Errorf("GOMAXPROCS=%d shards=%d: fig1 quick digest\n got  %s\n want %s",
					gmp, shards, got, goldenFig1Quick)
			}
			if got := digestFig3Sharded(Options{Seed: 2024}, shards); got != goldenFig3 {
				t.Errorf("GOMAXPROCS=%d shards=%d: fig3 digest\n got  %s\n want %s",
					gmp, shards, got, goldenFig3)
			}
		}
	}
	runtime.GOMAXPROCS(prev)
	// The serial-oracle placement of fig3 — four points on ONE shared
	// engine — must match too: interleaving independent points on one
	// event heap is invisible to each point's row.
	if got := digestFig3Sharded(Options{Seed: 2024}, 0); got != goldenFig3 {
		t.Errorf("oracle fig3 digest\n got  %s\n want %s", got, goldenFig3)
	}
}

func digestStraggler(opts Options) string {
	r := stragglerRun(opts, 240, 16)
	h := sha256.New()
	fmt.Fprintf(h, "%d %d %d %d %d %.9f %.9f %.9f %.9f\n",
		r.Nodes, r.Tasks, r.Stragglers, r.Preempted, r.Failed, r.P50, r.P90, r.P99, r.Max)
	return hex.EncodeToString(h.Sum(nil))
}

// TestStragglerShardInvariant drives the Fail/Recover preemption path —
// control posts crossing group boundaries mid-run — through the digest
// contract, and checks the scenario actually bites (nodes preempted,
// tasks lost).
func TestStragglerShardInvariant(t *testing.T) {
	want := digestStraggler(Options{Seed: 2024, Shards: 0})
	for _, shards := range []int{1, 3, 8} {
		if got := digestStraggler(Options{Seed: 2024, Shards: shards}); got != want {
			t.Errorf("shards=%d: straggler digest\n got  %s\n want oracle %s", shards, got, want)
		}
	}
	r := stragglerRun(Options{Seed: 2024}, 240, 16)
	if r.Stragglers == 0 || r.Preempted == 0 {
		t.Errorf("scenario did not engage: %d stragglers, %d preempted", r.Stragglers, r.Preempted)
	}
	if r.Failed == 0 || r.Failed >= r.Tasks {
		t.Errorf("failed count %d out of range for %d tasks with %d preempted nodes",
			r.Failed, r.Tasks, r.Preempted)
	}
}

// TestWeakScaleShardInvariant pins the deterministic columns of a
// weak-scaling point across the oracle and the parallel kernel.
func TestWeakScaleShardInvariant(t *testing.T) {
	a := WeakScalePoint(Options{Seed: 2024, Shards: 0}, 500, 4)
	b := WeakScalePoint(Options{Seed: 2024, Shards: 4}, 500, 4)
	if a.MakespanS != b.MakespanS {
		t.Errorf("makespan differs: oracle %.9f, shards=4 %.9f", a.MakespanS, b.MakespanS)
	}
	if a.Tasks != b.Tasks || a.Tasks != 500*4 {
		t.Errorf("task counts: oracle %d, shards=4 %d, want %d", a.Tasks, b.Tasks, 500*4)
	}
	if b.Epochs == 0 {
		t.Errorf("sharded run reported zero epochs")
	}
}

// TestSweepPanicPropagates pins the worker-pool failure contract: a
// panicking sweep point must surface on the caller — tagged with the
// point index and carrying the original stack — not strand the feeder
// in a deadlock against a dead worker.
func TestSweepPanicPropagates(t *testing.T) {
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		sweep(16, 4, func(i int) {
			if i == 5 {
				panic("boom")
			}
		})
	}()
	var got any
	select {
	case got = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("sweep deadlocked after a panicking point")
	}
	if got == nil {
		t.Fatal("sweep swallowed the panic")
	}
	msg := fmt.Sprint(got)
	if !strings.Contains(msg, "sweep point 5") || !strings.Contains(msg, "boom") {
		t.Fatalf("panic missing point index or cause: %q", msg)
	}
	if !strings.Contains(msg, "goroutine") {
		t.Fatalf("panic missing original stack: %q", msg)
	}
}
