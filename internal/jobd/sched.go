package jobd

import (
	"context"
	"fmt"
	"sync"
)

// scheduler divides a fixed pool of global execution slots across
// queues by weighted fair queueing. Each queue carries a virtual time
// that advances by 1/weight per granted slot; whenever a slot frees,
// the waiting queue with the smallest virtual time wins it. Over any
// saturated window, queue i therefore receives weight_i / Σweights of
// the slots — a backlogged tenant cannot starve another queue beyond
// its share, which is the multi-tenant isolation property the service
// tests pin down.
//
// A queue's per-tenant quota (engine Jobs) bounds how many slots it can
// even ask for concurrently; the scheduler arbitrates the global pool
// underneath those caps.
type scheduler struct {
	mu    sync.Mutex
	slots int
	free  int
	qs    []*schedQueue
}

// schedQueue is one queue's standing with the scheduler.
type schedQueue struct {
	weight  int
	vtime   float64
	running int
	// waiting is FIFO within the queue: grants close the head channel.
	waiting []chan struct{}
}

func newScheduler(slots int) (*scheduler, error) {
	if slots < 1 {
		return nil, fmt.Errorf("jobd: slots must be >= 1, got %d", slots)
	}
	return &scheduler{slots: slots, free: slots}, nil
}

// register adds a queue with the given weight (clamped to >= 1).
func (s *scheduler) register(weight int) *schedQueue {
	if weight < 1 {
		weight = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sq := &schedQueue{weight: weight, vtime: s.floorLocked()}
	s.qs = append(s.qs, sq)
	return sq
}

// setWeight updates a queue's fair-share weight for future grants.
func (s *scheduler) setWeight(sq *schedQueue, weight int) {
	if weight < 1 {
		weight = 1
	}
	s.mu.Lock()
	sq.weight = weight
	s.mu.Unlock()
}

// unregister removes a queue. Any waiters it still has are granted
// nothing and must already be gone (the owning queue drains its engine
// before unregistering).
func (s *scheduler) unregister(sq *schedQueue) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, cand := range s.qs {
		if cand == sq {
			s.qs = append(s.qs[:i], s.qs[i+1:]...)
			break
		}
	}
}

// floorLocked is the minimum virtual time among queues that are active
// (running or waiting). A queue (re)joining contention starts at this
// floor rather than the virtual time it left off at, so an idle tenant
// cannot hoard "credit" and later monopolize the pool to catch up —
// the standard WFQ virtual-start clamp.
func (s *scheduler) floorLocked() float64 {
	floor := 0.0
	found := false
	for _, q := range s.qs {
		if q.running == 0 && len(q.waiting) == 0 {
			continue
		}
		if !found || q.vtime < floor {
			floor, found = q.vtime, true
		}
	}
	return floor
}

// queueStanding is one queue's instantaneous scheduler view, exposed
// for introspection (the flight recorder's per-queue snapshot source).
type queueStanding struct {
	vtime   float64
	running int
	waiting int
}

// standing snapshots sq's fair-share state.
func (s *scheduler) standing(sq *schedQueue) queueStanding {
	s.mu.Lock()
	defer s.mu.Unlock()
	return queueStanding{vtime: sq.vtime, running: sq.running, waiting: len(sq.waiting)}
}

// acquire blocks until the queue is granted a global slot or ctx is
// done. Callers must release exactly once per successful acquire.
func (s *scheduler) acquire(ctx context.Context, sq *schedQueue) error {
	s.mu.Lock()
	if sq.running == 0 && len(sq.waiting) == 0 {
		// Idle → active transition: clamp to the active floor.
		if f := s.floorLocked(); sq.vtime < f {
			sq.vtime = f
		}
	}
	ch := make(chan struct{})
	sq.waiting = append(sq.waiting, ch)
	s.grantLocked()
	s.mu.Unlock()

	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		granted := true
		for i, cand := range sq.waiting {
			if cand == ch {
				sq.waiting = append(sq.waiting[:i], sq.waiting[i+1:]...)
				granted = false
				break
			}
		}
		if granted {
			// The grant raced the cancellation: the slot is ours, give
			// it straight back.
			sq.running--
			s.free++
			s.grantLocked()
		}
		s.mu.Unlock()
		return ctx.Err()
	}
}

// release returns a slot to the pool and hands it to the next winner.
func (s *scheduler) release(sq *schedQueue) {
	s.mu.Lock()
	sq.running--
	s.free++
	s.grantLocked()
	s.mu.Unlock()
}

// grantLocked hands free slots to waiting queues in virtual-time order.
func (s *scheduler) grantLocked() {
	for s.free > 0 {
		var best *schedQueue
		for _, q := range s.qs {
			if len(q.waiting) == 0 {
				continue
			}
			if best == nil || q.vtime < best.vtime {
				best = q
			}
		}
		if best == nil {
			return
		}
		ch := best.waiting[0]
		best.waiting = best.waiting[1:]
		best.running++
		best.vtime += 1 / float64(best.weight)
		s.free--
		close(ch)
	}
}
