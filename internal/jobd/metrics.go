package jobd

import (
	"repro/internal/telemetry"
)

// latencyBounds covers submit→dispatch latencies from sub-millisecond
// (idle queue, hot path) to tens of seconds (deep backlog).
var latencyBounds = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// queueMetrics is the per-queue jobd_* series, labeled by queue name.
// Registration is idempotent in the registry, but each queue's label
// set yields its own series.
type queueMetrics struct {
	submitted        *telemetry.Counter
	doneOK           *telemetry.Counter
	doneFailed       *telemetry.Counter
	doneCancelled    *telemetry.Counter
	submitToDispatch *telemetry.Histogram
	dispatch         *telemetry.Histogram
}

func newQueueMetrics(reg *telemetry.Registry, q *queue) *queueMetrics {
	l := telemetry.L("queue", q.name)
	m := &queueMetrics{
		submitted: reg.Counter("jobd_jobs_submitted_total",
			"jobs accepted (topic-appended and intent-logged)", l),
		doneOK: reg.Counter("jobd_jobs_completed_total",
			"jobs reaching a terminal state", l, telemetry.L("outcome", "ok")),
		doneFailed: reg.Counter("jobd_jobs_completed_total",
			"jobs reaching a terminal state", l, telemetry.L("outcome", "failed")),
		doneCancelled: reg.Counter("jobd_jobs_completed_total",
			"jobs reaching a terminal state", l, telemetry.L("outcome", "cancelled")),
		submitToDispatch: reg.Histogram("jobd_submit_to_dispatch_seconds",
			"latency from submit ack to job process start", latencyBounds, l),
		dispatch: reg.Histogram("jobd_dispatch_latency_seconds",
			"engine dispatch delay (includes fair-share queue wait)", latencyBounds, l),
	}
	reg.GaugeFunc("jobd_queue_depth", "jobs accepted but not yet dispatched",
		func() float64 {
			q.mu.Lock()
			defer q.mu.Unlock()
			return float64(q.counts[statePending])
		}, l)
	reg.GaugeFunc("jobd_queue_running", "jobs currently executing",
		func() float64 {
			q.mu.Lock()
			defer q.mu.Unlock()
			return float64(q.counts[stateRunning])
		}, l)
	reg.CounterFunc("jobd_events_dropped_total",
		"events dropped by saturated bus subscribers (watch streams, span mirrors)",
		func() float64 { return float64(q.bus.Dropped()) }, l)
	return m
}

func (m *queueMetrics) completed(final jobStateCode) {
	switch final {
	case stateOK:
		m.doneOK.Inc()
	case stateFailed:
		m.doneFailed.Inc()
	case stateCancelled:
		m.doneCancelled.Inc()
	}
}
