package jobd

import (
	"context"
	"time"

	"repro/internal/core"
)

// queueRunner wraps the server's base Runner with the service's
// per-job concerns, in order:
//
//  1. cancelled jobs are skipped without execution, reported as a
//     zero-exit result so the WAL records a completion and no later
//     generation revisits the seq (the cancel set keeps the table
//     state "cancelled");
//  2. the global fair-share slot is acquired — the engine slot (queue
//     quota) is already held, so a queue's waiting jobs occupy at most
//     quota slots' worth of scheduler queueing;
//  3. the submit→dispatch latency histogram is fed — this is the
//     ROADMAP's service-level metric, measured from the submit ack's
//     table timestamp to the moment the job's process is about to
//     start;
//  4. a per-job cancel context is armed so DELETE /v1/jobs can kill a
//     running job without touching its neighbors.
//
// Because the fair-share wait happens inside Run, the engine's
// DispatchDelay for a daemon job includes time spent queued behind
// other tenants — `gopar report` on a queue's span file therefore
// attributes cross-tenant contention to the dispatch phase, which is
// exactly where a tenant perceives it.
type queueRunner struct {
	q *queue
}

func (r *queueRunner) Run(ctx context.Context, job *core.Job) core.Result {
	q := r.q
	if q.isCancelled(job.Seq) {
		now := time.Now()
		return core.Result{Job: *job, Start: now, End: now}
	}
	if err := q.srv.sched.acquire(ctx, q.sq); err != nil {
		now := time.Now()
		return core.Result{Job: *job, Err: err, Start: now, End: now}
	}
	defer q.srv.sched.release(q.sq)

	jctx, cancel, already, submitted := q.armCancel(ctx, job.Seq)
	if already {
		now := time.Now()
		return core.Result{Job: *job, Start: now, End: now}
	}
	defer q.disarmCancel(job.Seq)
	defer cancel()
	if !submitted.IsZero() {
		q.met.submitToDispatch.Observe(time.Since(submitted).Seconds())
	}
	return q.srv.runner.Run(jctx, job)
}
