package jobd

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// countRunner records how many times each command ran — the
// exactly-once audit primitive for restart tests. An optional gate
// blocks every run until released, and an optional perRun hook sees
// each command.
type countRunner struct {
	mu     sync.Mutex
	runs   map[string]int
	gate   chan struct{}
	perRun func(cmd string)
	fail   func(cmd string) bool
}

func newCountRunner() *countRunner {
	return &countRunner{runs: map[string]int{}}
}

func (r *countRunner) setGate(gate chan struct{}) {
	r.mu.Lock()
	r.gate = gate
	r.mu.Unlock()
}

func (r *countRunner) Run(ctx context.Context, job *core.Job) core.Result {
	start := time.Now()
	r.mu.Lock()
	gate := r.gate
	r.mu.Unlock()
	if gate != nil {
		select {
		case <-gate:
		case <-ctx.Done():
			return core.Result{Job: *job, Err: ctx.Err(), ExitCode: -1, Start: start, End: time.Now()}
		}
	}
	r.mu.Lock()
	r.runs[job.Command]++
	r.mu.Unlock()
	if r.perRun != nil {
		r.perRun(job.Command)
	}
	res := core.Result{Job: *job, Start: start, End: time.Now()}
	if r.fail != nil && r.fail(job.Command) {
		res.ExitCode = 7
	}
	return res
}

func (r *countRunner) count(cmd string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.runs[cmd]
}

func (r *countRunner) total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, c := range r.runs {
		n += c
	}
	return n
}

func newTestServer(t *testing.T, dir string, runner core.Runner, mut func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		Dir:        dir,
		Slots:      4,
		Runner:     runner,
		DrainGrace: 2 * time.Second,
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func waitTerminal(t *testing.T, q *queue, seq int) JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := q.Wait(ctx, seq, 0)
	if err != nil {
		t.Fatalf("wait %d: %v", seq, err)
	}
	if st.State == "pending" || st.State == "running" {
		t.Fatalf("job %d not terminal after wait: %s", seq, st.State)
	}
	return st
}

func TestSubmitRunsAndCompletes(t *testing.T) {
	r := newCountRunner()
	s := newTestServer(t, t.TempDir(), r, nil)
	defer s.Close()

	q, err := s.EnsureQueue("alpha")
	if err != nil {
		t.Fatal(err)
	}
	seqs, err := q.Submit([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 3 || seqs[0] != 1 || seqs[2] != 3 {
		t.Fatalf("seqs = %v, want [1 2 3]", seqs)
	}
	for _, seq := range seqs {
		if st := waitTerminal(t, q, seq); st.State != "ok" {
			t.Fatalf("job %d state %s, want ok", seq, st.State)
		}
	}
	for _, cmd := range []string{"a", "b", "c"} {
		if r.count(cmd) != 1 {
			t.Fatalf("command %q ran %d times, want 1", cmd, r.count(cmd))
		}
	}
	st := q.stats()
	if st.OK != 3 || st.Submitted != 3 || st.Pending != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFailedJobReported(t *testing.T) {
	r := newCountRunner()
	r.fail = func(cmd string) bool { return strings.HasPrefix(cmd, "bad") }
	s := newTestServer(t, t.TempDir(), r, nil)
	defer s.Close()

	q, _ := s.EnsureQueue("alpha")
	seqs, err := q.Submit([]string{"good", "bad1"})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, q, seqs[0]); st.State != "ok" {
		t.Fatalf("good job state %s", st.State)
	}
	st := waitTerminal(t, q, seqs[1])
	if st.State != "failed" || st.Exit != 7 {
		t.Fatalf("bad job = %+v, want failed exit 7", st)
	}
}

// TestResumeAcrossRestart pins the service's durability contract: jobs
// pending at (graceful) shutdown run exactly once after reopen, and
// completed jobs — including failures — never re-run.
func TestResumeAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	r := newCountRunner()
	r.fail = func(cmd string) bool { return cmd == "fails" }

	s := newTestServer(t, dir, r, func(c *Config) { c.DrainGrace = 200 * time.Millisecond })
	q, _ := s.EnsureQueue("alpha")
	seqs, err := q.Submit([]string{"done1", "fails", "done2"})
	if err != nil {
		t.Fatal(err)
	}
	for _, seq := range seqs {
		waitTerminal(t, q, seq)
	}
	// Trap the runner shut, then submit jobs that cannot finish before
	// Close: the dispatched ones (up to quota) are cancelled at the
	// drain grace and recorded failed; the never-dispatched rest stay
	// pending and must run after reopen.
	r.setGate(make(chan struct{}))
	if _, err := q.Submit([]string{"late1", "late2", "late3", "late4", "late5", "late6"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	preLate := 0
	for i := 1; i <= 6; i++ {
		preLate += r.count(fmt.Sprintf("late%d", i))
	}
	if preLate != 0 {
		t.Fatalf("gated late jobs ran before restart: %d", preLate)
	}

	// Second generation: gate open; the pending backlog drains.
	r.setGate(nil)
	s2 := newTestServer(t, dir, r, nil)
	defer s2.Close()
	q2, err := s2.Queue("alpha")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := q2.stats()
		if st.Pending == 0 && st.Running == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("backlog never drained: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if r.count("done1") != 1 || r.count("done2") != 1 || r.count("fails") != 1 {
		t.Fatalf("completed jobs re-ran: done1=%d fails=%d done2=%d",
			r.count("done1"), r.count("fails"), r.count("done2"))
	}
	st := q2.stats()
	if st.Submitted != 9 {
		t.Fatalf("submitted = %d, want 9", st.Submitted)
	}
	// Every late job ran at most once after the restart (the cancelled
	// ones are terminal-failed and excluded from resume).
	for i := 1; i <= 6; i++ {
		cmd := fmt.Sprintf("late%d", i)
		if c := r.count(cmd); c > 1 {
			t.Fatalf("%s ran %d times, want <= 1", cmd, c)
		}
	}
	if st.OK+st.Failed+st.Cancelled != 9 {
		t.Fatalf("not all jobs terminal: %+v", st)
	}
}

func TestCancelPendingAndRunning(t *testing.T) {
	r := newCountRunner()
	r.gate = make(chan struct{})
	started := make(chan string, 16)
	r.perRun = func(cmd string) { started <- cmd }

	s := newTestServer(t, t.TempDir(), r, func(c *Config) { c.Slots = 1; c.DefaultQuota = 1 })
	defer s.Close()
	q, _ := s.EnsureQueue("alpha")

	// blocker occupies the single slot; victim stays pending.
	seqs, err := q.Submit([]string{"blocker", "victim"})
	if err != nil {
		t.Fatal(err)
	}
	// Cancel the pending victim: terminal immediately, runner never sees it.
	st, err := q.Cancel(seqs[1])
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "cancelled" {
		t.Fatalf("victim state %s, want cancelled", st.State)
	}
	if _, err := q.Cancel(seqs[1]); err != ErrAlreadyDone {
		t.Fatalf("double cancel err = %v, want ErrAlreadyDone", err)
	}
	close(r.gate)
	if stb := waitTerminal(t, q, seqs[0]); stb.State != "ok" {
		t.Fatalf("blocker state %s", stb.State)
	}
	if st := waitTerminal(t, q, seqs[1]); st.State != "cancelled" {
		t.Fatalf("victim settled as %s, want cancelled", st.State)
	}
	if r.count("victim") != 0 {
		t.Fatalf("cancelled pending job ran %d times", r.count("victim"))
	}
}

func TestCancelRunningJobKillsIt(t *testing.T) {
	blockerRunning := make(chan struct{}, 1)
	unblocked := make(chan struct{})
	runner := core.FuncRunner(func(ctx context.Context, job *core.Job) ([]byte, error) {
		if job.Command == "sleeper" {
			blockerRunning <- struct{}{}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-unblocked:
				return nil, nil
			}
		}
		return nil, nil
	})
	s := newTestServer(t, t.TempDir(), runner, nil)
	defer s.Close()
	defer close(unblocked)
	q, _ := s.EnsureQueue("alpha")
	seqs, err := q.Submit([]string{"sleeper"})
	if err != nil {
		t.Fatal(err)
	}
	<-blockerRunning
	if _, err := q.Cancel(seqs[0]); err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, q, seqs[0])
	if st.State != "cancelled" {
		t.Fatalf("killed job state %s, want cancelled", st.State)
	}
}

// TestCancelSurvivesRestart: a cancel is persisted before it is acted
// on, so a restart cannot resurrect the job.
func TestCancelSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	r := newCountRunner()
	r.setGate(make(chan struct{})) // nothing completes in generation one

	// Quota 1: "blocker" occupies the engine slot blocked on the gate,
	// so "victim" and "survivor" are still pending when we cancel and
	// close. The blocker itself is cancelled at the drain grace and
	// recorded failed — a graceful stop leaves no job mid-flight.
	s := newTestServer(t, dir, r, func(c *Config) {
		c.Slots = 1
		c.DrainGrace = 50 * time.Millisecond
	})
	q, _ := s.EnsureQueue("alpha")
	seqs, err := q.Submit([]string{"blocker", "victim", "survivor"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Cancel(seqs[1]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r.setGate(nil)
	s2 := newTestServer(t, dir, r, nil)
	defer s2.Close()
	q2, err := s2.Queue("alpha")
	if err != nil {
		t.Fatal(err)
	}
	st, err := q2.Status(seqs[1])
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "cancelled" {
		t.Fatalf("cancelled job resurrected as %s", st.State)
	}
	if st := waitTerminal(t, q2, seqs[2]); st.State != "ok" {
		t.Fatalf("survivor state %s, want ok", st.State)
	}
	if r.count("survivor") != 1 {
		t.Fatalf("survivor ran %d times, want 1", r.count("survivor"))
	}
	if r.count("victim") != 0 {
		t.Fatalf("cancelled job ran %d times after restart", r.count("victim"))
	}
}

// TestFairShareIsolation is the ISSUE's starvation criterion: a tenant
// saturating the pool with a deep backlog cannot stop another queue
// from getting its fair share. With equal weights and a single slot,
// the light tenant's 5 jobs must all finish within the first ~2×5
// grants even though the heavy tenant has 200 queued ahead of them.
func TestFairShareIsolation(t *testing.T) {
	var grantOrder []string
	var mu sync.Mutex
	startGate := make(chan struct{}) // held until both tenants have submitted
	runner := core.FuncRunner(func(ctx context.Context, job *core.Job) ([]byte, error) {
		<-startGate
		mu.Lock()
		grantOrder = append(grantOrder, job.Command)
		mu.Unlock()
		// Long enough that each tenant's next job is back in the
		// scheduler's wait list before the slot frees: the fair-share
		// decision then happens under real contention every time.
		time.Sleep(time.Millisecond)
		return nil, nil
	})
	s := newTestServer(t, t.TempDir(), runner, func(c *Config) {
		c.Slots = 1
		c.DefaultQuota = 1
	})
	defer s.Close()

	heavy, err := s.ConfigureQueue("heavy", QueueConfig{Quota: 1, Weight: 1})
	if err != nil {
		t.Fatal(err)
	}
	light, err := s.ConfigureQueue("light", QueueConfig{Quota: 1, Weight: 1})
	if err != nil {
		t.Fatal(err)
	}

	heavyCmds := make([]string, 200)
	for i := range heavyCmds {
		heavyCmds[i] = fmt.Sprintf("heavy-%d", i)
	}
	if _, err := heavy.Submit(heavyCmds); err != nil {
		t.Fatal(err)
	}
	lightCmds := []string{"light-0", "light-1", "light-2", "light-3", "light-4"}
	seqs, err := light.Submit(lightCmds)
	if err != nil {
		t.Fatal(err)
	}
	close(startGate)
	for _, seq := range seqs {
		if st := waitTerminal(t, light, seq); st.State != "ok" {
			t.Fatalf("light job %d state %s", seq, st.State)
		}
	}
	// All five light jobs are done. Count how many heavy jobs completed
	// before the last light one: with 1:1 weights the scheduler
	// interleaves, so the bound is ~#light + quota slack; far below the
	// 200-job backlog a FIFO pool would have drained first.
	mu.Lock()
	var heavyBefore, lightSeen int
	for _, cmd := range grantOrder {
		if strings.HasPrefix(cmd, "light-") {
			lightSeen++
			if lightSeen == len(lightCmds) {
				break
			}
		} else {
			heavyBefore++
		}
	}
	mu.Unlock()
	if heavyBefore > 20 {
		t.Fatalf("light tenant starved: %d heavy jobs ran before its 5 finished", heavyBefore)
	}
}

// TestQuotaCapsConcurrency: a queue cannot occupy more slots than its
// quota even when the global pool is idle.
func TestQuotaCapsConcurrency(t *testing.T) {
	var running, peak atomic.Int32
	gate := make(chan struct{})
	runner := core.FuncRunner(func(ctx context.Context, job *core.Job) ([]byte, error) {
		n := running.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		<-gate
		running.Add(-1)
		return nil, nil
	})
	s := newTestServer(t, t.TempDir(), runner, func(c *Config) { c.Slots = 8 })
	defer s.Close()
	q, err := s.ConfigureQueue("capped", QueueConfig{Quota: 2, Weight: 1})
	if err != nil {
		t.Fatal(err)
	}
	cmds := make([]string, 10)
	for i := range cmds {
		cmds[i] = fmt.Sprintf("j%d", i)
	}
	seqs, err := q.Submit(cmds)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	close(gate)
	for _, seq := range seqs {
		waitTerminal(t, q, seq)
	}
	if p := peak.Load(); p > 2 {
		t.Fatalf("quota-2 queue reached %d concurrent jobs", p)
	}
}

// TestConfigureQueueQuotaRestart: raising the quota mid-run restarts
// the engine generation in place without losing or re-running work.
func TestConfigureQueueQuotaRestart(t *testing.T) {
	r := newCountRunner()
	s := newTestServer(t, t.TempDir(), r, func(c *Config) { c.Slots = 4 })
	defer s.Close()
	q, err := s.ConfigureQueue("grow", QueueConfig{Quota: 1, Weight: 1})
	if err != nil {
		t.Fatal(err)
	}
	seqs, err := q.Submit([]string{"one", "two"})
	if err != nil {
		t.Fatal(err)
	}
	for _, seq := range seqs {
		waitTerminal(t, q, seq)
	}
	if _, err := s.ConfigureQueue("grow", QueueConfig{Quota: 3, Weight: 2}); err != nil {
		t.Fatal(err)
	}
	seqs2, err := q.Submit([]string{"three", "four"})
	if err != nil {
		t.Fatal(err)
	}
	for _, seq := range seqs2 {
		if st := waitTerminal(t, q, seq); st.State != "ok" {
			t.Fatalf("post-reconfig job %d state %s", seq, st.State)
		}
	}
	for _, cmd := range []string{"one", "two", "three", "four"} {
		if r.count(cmd) != 1 {
			t.Fatalf("%s ran %d times after quota restart, want 1", cmd, r.count(cmd))
		}
	}
	if got := q.config(); got.Quota != 3 || got.Weight != 2 {
		t.Fatalf("config = %+v", got)
	}
}

func TestQueueValidationAndLookup(t *testing.T) {
	s := newTestServer(t, t.TempDir(), newCountRunner(), nil)
	defer s.Close()
	for _, bad := range []string{"", "a/b", "a\\b", "a.b", strings.Repeat("x", 129)} {
		if _, err := s.EnsureQueue(bad); err == nil {
			t.Fatalf("queue name %q accepted", bad)
		}
	}
	if _, err := s.Queue("nope"); err == nil || !strings.Contains(err.Error(), "not found") {
		t.Fatalf("missing queue err = %v", err)
	}
}

func TestCloseRejectsFurtherWork(t *testing.T) {
	s := newTestServer(t, t.TempDir(), newCountRunner(), nil)
	q, _ := s.EnsureQueue("alpha")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit([]string{"x"}); err != ErrClosed {
		t.Fatalf("submit after close = %v, want ErrClosed", err)
	}
	if _, err := s.EnsureQueue("beta"); err != ErrClosed {
		t.Fatalf("ensure after close = %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close = %v", err)
	}
}
