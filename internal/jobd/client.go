package jobd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// Client is a thin Go client for the jobd HTTP API. The zero value is
// not usable; construct with NewClient. It is safe for concurrent use
// (the underlying http.Client pools connections).
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the daemon at base (e.g.
// "http://127.0.0.1:8080"). A nil hc uses http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: base, hc: hc}
}

// apiError is the decoded {"error": ...} body of a non-2xx response.
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("jobd: HTTP %d: %s", e.Status, e.Msg)
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rdr io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rdr = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rdr)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(data, &e) != nil || e.Error == "" {
			e.Error = string(bytes.TrimSpace(data))
		}
		return &apiError{Status: resp.StatusCode, Msg: e.Error}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit enqueues commands on queue and returns the assigned seqs.
func (c *Client) Submit(ctx context.Context, queue string, commands ...string) ([]int, error) {
	var resp SubmitResponse
	err := c.do(ctx, http.MethodPost, "/v1/queues/"+url.PathEscape(queue)+"/jobs",
		SubmitRequest{Commands: commands}, &resp)
	if err != nil {
		return resp.Seqs, err
	}
	return resp.Seqs, nil
}

// Status fetches a job's current status. A positive wait long-polls:
// the server holds the request until the job is terminal or wait
// elapses, then returns whatever state it is in.
func (c *Client) Status(ctx context.Context, queue string, seq int, wait time.Duration) (JobStatus, error) {
	path := "/v1/jobs/" + url.PathEscape(queue) + "/" + strconv.Itoa(seq)
	if wait > 0 {
		path += "?wait=" + url.QueryEscape(wait.String())
	}
	var st JobStatus
	err := c.do(ctx, http.MethodGet, path, nil, &st)
	return st, err
}

// Cancel requests cancellation of a job. Cancelling an already-terminal
// job returns its final status and an HTTP 409 apiError.
func (c *Client) Cancel(ctx context.Context, queue string, seq int) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete,
		"/v1/jobs/"+url.PathEscape(queue)+"/"+strconv.Itoa(seq), nil, &st)
	return st, err
}

// Queues lists every queue's stats.
func (c *Client) Queues(ctx context.Context) ([]QueueStats, error) {
	var resp struct {
		Queues []QueueStats `json:"queues"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/queues", nil, &resp)
	return resp.Queues, err
}

// QueueStats fetches one queue's stats.
func (c *Client) QueueStats(ctx context.Context, queue string) (QueueStats, error) {
	var st QueueStats
	err := c.do(ctx, http.MethodGet, "/v1/queues/"+url.PathEscape(queue), nil, &st)
	return st, err
}

// Configure creates or reconfigures a queue's quota/weight policy.
func (c *Client) Configure(ctx context.Context, queue string, cfg QueueConfig) (QueueStats, error) {
	var st QueueStats
	err := c.do(ctx, http.MethodPut, "/v1/queues/"+url.PathEscape(queue), cfg, &st)
	return st, err
}

// Jobs lists a queue's jobs, newest first, optionally filtered by state
// ("pending", "running", "ok", "failed", "cancelled"; "" = all).
func (c *Client) Jobs(ctx context.Context, queue, state string, limit int) ([]JobStatus, error) {
	var resp struct {
		Jobs []JobStatus `json:"jobs"`
	}
	path := "/v1/queues/" + url.PathEscape(queue) + "/jobs"
	qv := url.Values{}
	if state != "" {
		qv.Set("state", state)
	}
	if limit > 0 {
		qv.Set("limit", strconv.Itoa(limit))
	}
	if len(qv) > 0 {
		path += "?" + qv.Encode()
	}
	err := c.do(ctx, http.MethodGet, path, nil, &resp)
	return resp.Jobs, err
}

// Watch streams a queue's live events, invoking fn per event until the
// stream ends (daemon shutdown), ctx is cancelled, or fn returns a
// non-nil error (returned verbatim, letting callers stop early).
func (c *Client) Watch(ctx context.Context, queue string, fn func(WatchEvent) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/queues/"+url.PathEscape(queue)+"/jobs?watch=1", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		return &apiError{Status: resp.StatusCode, Msg: string(bytes.TrimSpace(data))}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var ev WatchEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("jobd: bad watch line: %w", err)
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return nil
}
