package jobd

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func newAPIServer(t *testing.T, runner core.Runner, mut func(*Config)) (*Server, *Client) {
	t.Helper()
	s := newTestServer(t, t.TempDir(), runner, mut)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, NewClient(hs.URL, hs.Client())
}

func TestHTTPSubmitAndStatus(t *testing.T) {
	r := newCountRunner()
	_, c := newAPIServer(t, r, nil)
	ctx := context.Background()

	seqs, err := c.Submit(ctx, "web", "echo one")
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 1 || seqs[0] != 1 {
		t.Fatalf("seqs = %v", seqs)
	}
	st, err := c.Status(ctx, "web", 1, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "ok" || st.ID != "web/1" || st.Queue != "web" {
		t.Fatalf("status = %+v", st)
	}
	if r.count("echo one") != 1 {
		t.Fatalf("command ran %d times", r.count("echo one"))
	}
}

func TestHTTPBatchSubmit(t *testing.T) {
	_, c := newAPIServer(t, newCountRunner(), nil)
	ctx := context.Background()
	cmds := make([]string, 20)
	for i := range cmds {
		cmds[i] = fmt.Sprintf("job-%d", i)
	}
	seqs, err := c.Submit(ctx, "batch", cmds...)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 20 {
		t.Fatalf("got %d seqs, want 20", len(seqs))
	}
	for _, seq := range seqs {
		st, err := c.Status(ctx, "batch", seq, 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != "ok" {
			t.Fatalf("job %d state %s", seq, st.State)
		}
	}
}

func TestHTTPQueueStatsAndConfigure(t *testing.T) {
	_, c := newAPIServer(t, newCountRunner(), nil)
	ctx := context.Background()

	qs, err := c.Configure(ctx, "tenant-a", QueueConfig{Quota: 2, Weight: 5})
	if err != nil {
		t.Fatal(err)
	}
	if qs.Quota != 2 || qs.Weight != 5 {
		t.Fatalf("configured stats = %+v", qs)
	}
	if _, err := c.Submit(ctx, "tenant-b", "x"); err != nil {
		t.Fatal(err)
	}
	all, err := c.Queues(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 || all[0].Name != "tenant-a" || all[1].Name != "tenant-b" {
		t.Fatalf("queues = %+v", all)
	}
	one, err := c.QueueStats(ctx, "tenant-a")
	if err != nil {
		t.Fatal(err)
	}
	if one.Name != "tenant-a" || one.Weight != 5 {
		t.Fatalf("queue stats = %+v", one)
	}
}

func TestHTTPErrors(t *testing.T) {
	_, c := newAPIServer(t, newCountRunner(), nil)
	ctx := context.Background()

	wantStatus := func(err error, status int) {
		t.Helper()
		var ae *apiError
		if !errors.As(err, &ae) || ae.Status != status {
			t.Fatalf("err = %v, want HTTP %d", err, status)
		}
	}
	_, err := c.Status(ctx, "ghost", 1, 0)
	wantStatus(err, http.StatusNotFound)
	_, err = c.QueueStats(ctx, "ghost")
	wantStatus(err, http.StatusNotFound)
	_, err = c.Cancel(ctx, "ghost", 1)
	wantStatus(err, http.StatusNotFound)

	if _, err := c.Submit(ctx, "real", "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Status(ctx, "real", 1, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	_, err = c.Status(ctx, "real", 99, 0)
	wantStatus(err, http.StatusNotFound)
	// Cancelling a finished job is a 409 conflict.
	_, err = c.Cancel(ctx, "real", 1)
	wantStatus(err, http.StatusConflict)
	// Bad queue names are rejected before touching disk.
	_, err = c.Submit(ctx, "no.dots", "x")
	if err == nil {
		t.Fatal("dotted queue name accepted")
	}
	// Empty submit body.
	_, err = c.Submit(ctx, "real")
	if err == nil {
		t.Fatal("empty submit accepted")
	}
}

func TestHTTPCancelRunning(t *testing.T) {
	gate := make(chan struct{})
	runner := core.FuncRunner(func(ctx context.Context, job *core.Job) ([]byte, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-gate:
			return nil, nil
		}
	})
	_, c := newAPIServer(t, runner, nil)
	defer close(gate)
	ctx := context.Background()
	seqs, err := c.Submit(ctx, "work", "sleeper")
	if err != nil {
		t.Fatal(err)
	}
	// Wait until it is running, then cancel over the API.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := c.Status(ctx, "work", seqs[0], 0)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	st, err := c.Cancel(ctx, "work", seqs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !st.Cancelled {
		t.Fatalf("cancel response = %+v", st)
	}
	st, err = c.Status(ctx, "work", seqs[0], 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "cancelled" {
		t.Fatalf("final state %s, want cancelled", st.State)
	}
}

func TestHTTPJobsList(t *testing.T) {
	r := newCountRunner()
	r.fail = func(cmd string) bool { return cmd == "bad" }
	_, c := newAPIServer(t, r, nil)
	ctx := context.Background()
	seqs, err := c.Submit(ctx, "mix", "good1", "bad", "good2")
	if err != nil {
		t.Fatal(err)
	}
	for _, seq := range seqs {
		if _, err := c.Status(ctx, "mix", seq, 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	all, err := c.Jobs(ctx, "mix", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("got %d jobs, want 3", len(all))
	}
	if all[0].Seq != 3 {
		t.Fatalf("jobs not newest-first: %+v", all)
	}
	failed, err := c.Jobs(ctx, "mix", "failed", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 1 || failed[0].Seq != 2 {
		t.Fatalf("failed filter = %+v", failed)
	}
	limited, err := c.Jobs(ctx, "mix", "", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) != 2 {
		t.Fatalf("limit ignored: %d jobs", len(limited))
	}
}

// TestHTTPWatch streams a queue's lifecycle events over the chunked
// JSONL endpoint while jobs run.
func TestHTTPWatch(t *testing.T) {
	_, c := newAPIServer(t, newCountRunner(), nil)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	if _, err := c.Configure(ctx, "live", QueueConfig{Quota: 1, Weight: 1}); err != nil {
		t.Fatal(err)
	}
	events := make(chan WatchEvent, 256)
	watchErr := make(chan error, 1)
	watchCtx, stopWatch := context.WithCancel(ctx)
	defer stopWatch()
	go func() {
		watchErr <- c.Watch(watchCtx, "live", func(ev WatchEvent) error {
			events <- ev
			return nil
		})
	}()

	// The watch request attaches asynchronously; submit warmup jobs
	// until its first event arrives, then every later event is captured.
	attached := false
	for i := 0; i < 100 && !attached; i++ {
		if _, err := c.Submit(ctx, "live", fmt.Sprintf("warmup-%d", i)); err != nil {
			t.Fatal(err)
		}
		select {
		case <-events:
			attached = true
		case <-time.After(100 * time.Millisecond):
		}
	}
	if !attached {
		t.Fatal("watch stream never delivered an event")
	}

	probeSeqs, err := c.Submit(ctx, "live", "probe")
	if err != nil {
		t.Fatal(err)
	}
	probeID := fmt.Sprintf("live/%d", probeSeqs[0])
	var seen []string
	deadline := time.After(10 * time.Second)
	for {
		var done bool
		select {
		case ev := <-events:
			if ev.ID != probeID {
				continue
			}
			seen = append(seen, ev.Type)
			done = ev.Type == "finished" || ev.Type == "killed"
		case <-deadline:
			t.Fatalf("no terminal event for %s; saw %v", probeID, seen)
		}
		if done {
			break
		}
	}
	joined := strings.Join(seen, ",")
	if !strings.Contains(joined, "started") || !strings.Contains(joined, "finished") {
		t.Fatalf("event stream = %v, want started..finished", seen)
	}
	stopWatch()
	select {
	case err := <-watchErr:
		if err != nil {
			t.Fatalf("watch returned %v after cancel", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch did not return after client cancel")
	}
}

// TestHTTPMetricsEndpoint: the jobd_* series are exported on /metrics.
func TestHTTPMetricsEndpoint(t *testing.T) {
	s, c := newAPIServer(t, newCountRunner(), nil)
	ctx := context.Background()
	if _, err := c.Submit(ctx, "m", "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Status(ctx, "m", 1, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	_ = s
	resp, err := c.hc.Get(c.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<20)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	for _, want := range []string{
		`jobd_jobs_submitted_total{queue="m"} 1`,
		`jobd_jobs_completed_total{queue="m",outcome="ok"} 1`,
		"jobd_submit_to_dispatch_seconds",
		"jobd_queue_depth",
		"jobd_slots 4",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, body)
		}
	}
}
