// Package jobd promotes the one-shot launcher engine into a
// persistent, multi-tenant job service: a long-lived coordinator that
// owns named queues, each bound to a WAL-backed run directory, and
// serves submits from many concurrent clients over HTTP/JSON.
//
// Architecture per queue:
//
//   - an mq.Topic is the submit log (one raw command string per
//     message, append-only, replayable) — the durable source of truth
//     for *what* was accepted;
//   - a wal.Log is the execution log (intent before dispatch,
//     completion after) — the durable source of truth for *how far*
//     execution got, exactly as in one-shot --wal runs;
//   - a long-lived core.Engine generation consumes the topic through a
//     blocking args.Source (mq's long-poll idiom), with Jobs set to
//     the queue's quota and ResumeFrom/WALDigests rebuilt from the WAL
//     on every (re)start.
//
// Every accepted submit is topic-appended and WAL-intent-logged before
// the ack, so a SIGKILL'd daemon restarts into the same state machine
// the one-shot crash harness proves: durable completions never
// re-execute, unlogged-completion jobs re-run exactly once.
//
// A weighted fair scheduler arbitrates the global slot pool across
// queues (see sched.go), so a saturating tenant is confined to its
// weight share and its per-queue quota. docs/SERVICE.md is the user
// manual for all of this.
package jobd

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/telemetry"
	"repro/internal/wal"
)

// Errors mapped to HTTP statuses by the API layer.
var (
	ErrNotFound    = errors.New("jobd: not found")
	ErrAlreadyDone = errors.New("jobd: job already finished")
	ErrClosed      = errors.New("jobd: server closed")
)

// QueueConfig is a queue's tenant policy, persisted as queue.json in
// the queue directory.
type QueueConfig struct {
	// Quota is the queue's own -j: the most slots it may occupy at
	// once, however idle the rest of the pool is.
	Quota int `json:"quota"`
	// Weight is the queue's fair share when the global pool is
	// contended: over a saturated window it receives Weight/ΣWeights
	// of the slots.
	Weight int `json:"weight"`
}

func (c QueueConfig) normalized() QueueConfig {
	if c.Quota < 1 {
		c.Quota = 1
	}
	if c.Weight < 1 {
		c.Weight = 1
	}
	return c
}

// Config configures a Server.
type Config struct {
	// Dir is the service state root: one subdirectory per queue.
	Dir string
	// Slots is the global execution-slot pool shared by all queues.
	Slots int
	// DefaultQuota/DefaultWeight apply to queues auto-created by a
	// first submit (both default to 1 when unset; quota additionally
	// defaults to Slots when <= 0 — a lone tenant gets the fleet).
	DefaultQuota  int
	DefaultWeight int
	// WALSync is each queue WAL's durability policy (the --wal-sync
	// trade-off: SyncAlways = durable ack, SyncInterval = ack may
	// precede durability by one group-commit window).
	WALSync wal.SyncPolicy
	// Runner executes jobs; nil selects ExecRunner with output
	// discarded unless Results is set.
	Runner core.Runner
	// Registry receives the jobd_* metric series; nil allocates a
	// private one (reachable via Server.Registry).
	Registry *telemetry.Registry
	// Spans mirrors each queue's event stream into
	// <dir>/<queue>/spans.jsonl for per-tenant `gopar report`
	// attribution.
	Spans bool
	// Results saves each job's output under <dir>/<queue>/results/<seq>/.
	Results bool
	// DrainGrace bounds graceful Close: how long running jobs get to
	// finish before they are cancelled (default 10s).
	DrainGrace time.Duration
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
	// Flight, when non-nil, is the daemon's flight recorder: every
	// queue's event bus is tapped into it and each queue registers a
	// "jobd/<queue>" snapshot source (depth, running, scheduler vtime,
	// WAL pipeline stats). The recorder is owned by the binary — jobd
	// neither Starts nor Stops it.
	Flight *flight.Recorder
	// FlightDir is where panic dumps land when an engine goroutine
	// unwinds (os.TempDir() when empty). Only meaningful with Flight.
	FlightDir string
}

// Server is the persistent job service: queue registry, shared
// scheduler, shared metrics. Create with New, serve its Handler, then
// Close.
type Server struct {
	cfg    Config
	reg    *telemetry.Registry
	wm     *telemetry.WalMetrics
	sched  *scheduler
	runner core.Runner
	start  time.Time

	// ctx force-cancels every engine generation; Close cancels it after
	// the drain grace expires.
	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	queues map[string]*queue
	closed bool
}

// New opens the service over cfg.Dir, resuming every queue found there
// (a directory containing queue.json): each queue's WAL is replayed
// and its engine restarted so interrupted jobs re-run exactly once.
func New(cfg Config) (*Server, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("jobd: Config.Dir is required")
	}
	if cfg.Slots < 1 {
		return nil, fmt.Errorf("jobd: Config.Slots must be >= 1, got %d", cfg.Slots)
	}
	if cfg.DefaultQuota < 1 {
		cfg.DefaultQuota = cfg.Slots
	}
	if cfg.DefaultWeight < 1 {
		cfg.DefaultWeight = 1
	}
	if cfg.DrainGrace <= 0 {
		cfg.DrainGrace = 10 * time.Second
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	if cfg.Runner == nil {
		cfg.Runner = &core.ExecRunner{DiscardOutput: !cfg.Results}
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	sched, err := newScheduler(cfg.Slots)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:    cfg,
		reg:    cfg.Registry,
		wm:     telemetry.NewWalMetrics(cfg.Registry),
		sched:  sched,
		runner: cfg.Runner,
		start:  time.Now(),
		ctx:    ctx,
		cancel: cancel,
		queues: map[string]*queue{},
	}
	s.reg.GaugeFunc("jobd_slots", "global execution slot pool size",
		func() float64 { return float64(cfg.Slots) })

	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		cancel()
		return nil, err
	}
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		name := ent.Name()
		if _, statErr := os.Stat(filepath.Join(cfg.Dir, name, "queue.json")); statErr != nil {
			continue
		}
		q, qerr := s.openQueue(name, QueueConfig{}, false)
		if qerr != nil {
			s.forceClose()
			return nil, fmt.Errorf("jobd: resuming queue %q: %w", name, qerr)
		}
		s.queues[name] = q
		s.logf("jobd: resumed queue %q (%d jobs submitted, %d to run)",
			name, q.stats().Submitted, q.stats().Pending)
	}
	return s, nil
}

// Registry exposes the metric registry (the daemon serves it on
// -metrics-addr and mounts it at /metrics on the API listener).
func (s *Server) Registry() *telemetry.Registry { return s.reg }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// validQueueName mirrors mq topic-name rules: path separators and dots
// are forbidden because the name becomes a directory component, and it
// doubles as the ID prefix ("queue/seq") so a slash would be ambiguous.
func validQueueName(name string) error {
	if name == "" || len(name) > 128 || strings.ContainsAny(name, "/\\.") {
		return fmt.Errorf("jobd: invalid queue name %q", name)
	}
	return nil
}

// Queue returns the named queue, or ErrNotFound.
func (s *Server) Queue(name string) (*queue, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if q, ok := s.queues[name]; ok {
		return q, nil
	}
	return nil, fmt.Errorf("%w: queue %q", ErrNotFound, name)
}

// EnsureQueue returns the named queue, creating it with the default
// policy on first use — a submit to a fresh queue name just works.
func (s *Server) EnsureQueue(name string) (*queue, error) {
	return s.ensureQueue(name, QueueConfig{Quota: s.cfg.DefaultQuota, Weight: s.cfg.DefaultWeight})
}

func (s *Server) ensureQueue(name string, cfg QueueConfig) (*queue, error) {
	if err := validQueueName(name); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if q, ok := s.queues[name]; ok {
		return q, nil
	}
	q, err := s.openQueue(name, cfg.normalized(), true)
	if err != nil {
		return nil, err
	}
	s.queues[name] = q
	s.logf("jobd: created queue %q (quota %d, weight %d)", name, q.config().Quota, q.config().Weight)
	return q, nil
}

// ConfigureQueue creates the queue with cfg, or updates an existing
// queue's policy (a quota change restarts its engine generation
// in-place; running jobs finish under the old quota first).
func (s *Server) ConfigureQueue(name string, cfg QueueConfig) (*queue, error) {
	cfg = cfg.normalized()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	q, ok := s.queues[name]
	s.mu.Unlock()
	if !ok {
		return s.ensureQueue(name, cfg)
	}
	if err := q.setConfig(cfg); err != nil {
		return nil, err
	}
	return q, nil
}

// Stats returns a snapshot for every queue, name-sorted.
func (s *Server) Stats() []QueueStats {
	s.mu.Lock()
	qs := make([]*queue, 0, len(s.queues))
	for _, q := range s.queues {
		qs = append(qs, q)
	}
	s.mu.Unlock()
	out := make([]QueueStats, 0, len(qs))
	for _, q := range qs {
		out = append(out, q.stats())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Close shuts the service down gracefully: queues stop accepting work,
// engines drain (running jobs get DrainGrace to finish; jobs still
// running after that are cancelled and recorded as failed — a graceful
// stop always leaves every dispatched job in a terminal state, and
// clients resubmit failures). Pending, never-dispatched jobs keep their
// WAL intent and run on the next start. Then every WAL, topic and event
// bus is flushed and closed. Only an unclean death (SIGKILL, power
// loss) leaves jobs mid-flight; those re-run exactly once on resume.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	qs := make([]*queue, 0, len(s.queues))
	for _, q := range s.queues {
		qs = append(qs, q)
	}
	s.mu.Unlock()

	dones := make([]<-chan struct{}, 0, len(qs))
	for _, q := range qs {
		dones = append(dones, q.beginStop())
	}
	deadline := time.After(s.cfg.DrainGrace)
	forced := false
	for _, done := range dones {
		select {
		case <-done:
		case <-deadline:
			if !forced {
				s.logf("jobd: drain grace expired, cancelling running jobs")
				s.cancel()
				forced = true
			}
			<-done
		}
	}
	s.cancel()

	var firstErr error
	for _, q := range qs {
		if err := q.finishClose(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// forceClose tears down queues opened so far when New itself fails.
func (s *Server) forceClose() {
	s.cancel()
	for _, q := range s.queues {
		<-q.beginStop()
		q.finishClose()
	}
}
