package jobd

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"repro/internal/args"
	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/mq"
	"repro/internal/span"
	"repro/internal/telemetry"
	"repro/internal/tmpl"
	"repro/internal/wal"
)

// jobStateCode is a job's lifecycle state in the queue's table.
type jobStateCode uint8

const (
	statePending jobStateCode = iota
	stateRunning
	stateOK
	stateFailed
	stateCancelled
	numStates
)

func (c jobStateCode) terminal() bool { return c >= stateOK }

func (c jobStateCode) String() string {
	switch c {
	case statePending:
		return "pending"
	case stateRunning:
		return "running"
	case stateOK:
		return "ok"
	case stateFailed:
		return "failed"
	case stateCancelled:
		return "cancelled"
	}
	return "unknown"
}

// jobEntry is one job's row in the queue table. done closes when the
// job reaches a terminal state — the long-poll primitive behind
// GET /v1/jobs/{q}/{seq}?wait=...
type jobEntry struct {
	state     jobStateCode
	exit      int
	cancelled bool
	submitted time.Time // zero for jobs submitted before the last daemon start
	started   time.Time
	ended     time.Time
	done      chan struct{}
}

// closedChan is the shared pre-closed done channel for entries that
// are already terminal when created (table rebuild on daemon start).
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// queue is one named tenant queue: submit log (topic), execution log
// (WAL), job table, event bus, and the current engine generation.
type queue struct {
	name string
	dir  string
	srv  *Server

	topic *mq.Topic
	wal   *wal.Log
	bus   *telemetry.Bus
	sq    *schedQueue
	met   *queueMetrics

	cancelMu sync.Mutex // serializes cancel-log appends
	cancelF  *os.File

	spanF    *os.File
	spanW    *bufio.Writer
	spanRec  *span.Recorder
	spanDone chan struct{}

	mu        sync.Mutex
	cfg       QueueConfig
	jobs      map[int]*jobEntry
	cancelled map[int]bool // persisted cancel set (survives restart)
	cancels   map[int]context.CancelFunc
	submitted int // highest seq handed out (== topic length)
	counts    [numStates]int
	broken    error
	closed    bool

	// engMu serializes engine generations: start, quota restart, stop.
	engMu   sync.Mutex
	drain   chan struct{}
	engDone chan struct{}
}

// openQueue opens (create=true: initializes) one queue directory and
// starts its engine generation. Caller holds s.mu.
func (s *Server) openQueue(name string, cfg QueueConfig, create bool) (*queue, error) {
	if err := validQueueName(name); err != nil {
		return nil, err
	}
	dir := filepath.Join(s.cfg.Dir, name)
	cfgPath := filepath.Join(dir, "queue.json")
	if create {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		if _, err := os.Stat(cfgPath); err != nil {
			if err := writeQueueConfig(cfgPath, cfg); err != nil {
				return nil, err
			}
		}
	}
	stored, err := readQueueConfig(cfgPath)
	if err != nil {
		return nil, err
	}
	cfg = stored.normalized()

	topic, err := mq.OpenTopic(dir, "jobs")
	if err != nil {
		return nil, err
	}
	wl, st, err := wal.Open(filepath.Join(dir, "wal"), wal.Options{
		Sync:          s.cfg.WALSync,
		FsyncObserver: s.wm.ObserveFsync,
	})
	if err != nil {
		topic.Close()
		return nil, err
	}
	s.wm.RecordReplay(st.Records, st.TornTails)
	cancelled, cancelF, err := openCancelLog(dir)
	if err != nil {
		topic.Close()
		wl.Close()
		return nil, err
	}

	q := &queue{
		name:      name,
		dir:       dir,
		srv:       s,
		topic:     topic,
		wal:       wl,
		bus:       telemetry.NewBus(),
		cancelF:   cancelF,
		cfg:       cfg,
		jobs:      map[int]*jobEntry{},
		cancelled: cancelled,
		cancels:   map[int]context.CancelFunc{},
	}
	q.met = newQueueMetrics(s.reg, q)
	q.rebuildTable(st)
	q.bus.Tap(q.onEvent)
	if s.cfg.Flight != nil {
		q.bus.Tap(s.cfg.Flight.RecordEvent)
	}
	if s.cfg.Spans {
		f, serr := os.OpenFile(filepath.Join(dir, "spans.jsonl"),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if serr != nil {
			q.closeFiles()
			return nil, serr
		}
		q.spanF = f
		q.spanW = bufio.NewWriter(f)
		q.spanRec = span.NewRecorder(q.spanW, false)
		q.spanDone = make(chan struct{})
		sub := q.bus.Subscribe(8192)
		go func() {
			defer close(q.spanDone)
			telemetry.Pump(sub, q.spanRec.Consume)
		}()
	}
	q.sq = s.sched.register(cfg.Weight)
	if s.cfg.Flight != nil {
		q.registerFlightSource()
	}

	q.engMu.Lock()
	defer q.engMu.Unlock()
	if err := q.startEngineLocked(st); err != nil {
		s.sched.unregister(q.sq)
		if s.cfg.Flight != nil {
			s.cfg.Flight.RemoveSource(q.flightSourceName())
		}
		q.closeFiles()
		return nil, err
	}
	return q, nil
}

func (q *queue) flightSourceName() string { return "jobd/" + q.name }

// registerFlightSource adds this queue's component snapshot to the
// daemon's flight recorder: scheduler standing, job-table gauges, WAL
// pipeline depth and sync recency. Sampled once per snapshot interval
// on the recorder's goroutine, so the brief locks are off every hot
// path.
func (q *queue) registerFlightSource() {
	rec := q.srv.cfg.Flight
	rec.AddSource(q.flightSourceName(), func(buf []flight.Stat) []flight.Stat {
		q.mu.Lock()
		depth := q.counts[statePending]
		running := q.counts[stateRunning]
		q.mu.Unlock()
		st := q.srv.sched.standing(q.sq)
		ws := q.wal.Stats()
		syncLagMS := -1.0 // no fsync yet
		if !ws.LastSync.IsZero() {
			syncLagMS = float64(time.Since(ws.LastSync)) / float64(time.Millisecond)
		}
		return append(buf,
			flight.Stat{Name: "depth", V: float64(depth)},
			flight.Stat{Name: "running", V: float64(running)},
			flight.Stat{Name: "sched_vtime", V: st.vtime},
			flight.Stat{Name: "sched_waiting", V: float64(st.waiting)},
			flight.Stat{Name: "wal_appended", V: float64(ws.Appended)},
			flight.Stat{Name: "wal_staged", V: float64(ws.Staged)},
			flight.Stat{Name: "wal_sync_lag_ms", V: syncLagMS},
			flight.Stat{Name: "events_dropped", V: float64(q.bus.Dropped())},
		)
	})
}

func writeQueueConfig(path string, cfg QueueConfig) error {
	data, err := json.Marshal(cfg)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func readQueueConfig(path string) (QueueConfig, error) {
	var cfg QueueConfig
	data, err := os.ReadFile(path)
	if err != nil {
		return cfg, err
	}
	return cfg, json.Unmarshal(data, &cfg)
}

// openCancelLog loads the persisted cancel set (one seq per line).
func openCancelLog(dir string) (map[int]bool, *os.File, error) {
	path := filepath.Join(dir, "cancelled.log")
	set := map[int]bool{}
	if data, err := os.ReadFile(path); err == nil {
		for _, line := range splitLines(data) {
			if seq, perr := strconv.Atoi(line); perr == nil && seq > 0 {
				set[seq] = true
			}
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return set, f, nil
}

func splitLines(data []byte) []string {
	var out []string
	start := 0
	for i, b := range data {
		if b == '\n' {
			if i > start {
				out = append(out, string(data[start:i]))
			}
			start = i + 1
		}
	}
	if start < len(data) {
		out = append(out, string(data[start:]))
	}
	return out
}

// rebuildTable reconstructs the job table from the durable facts at
// open time: the topic (what was accepted), the replayed WAL (what
// finished, with which exit), and the cancel set.
func (q *queue) rebuildTable(st *wal.State) {
	n := int(q.topic.Len())
	q.submitted = n
	for seq := 1; seq <= n; seq++ {
		e := &jobEntry{}
		switch exit, done := st.Completed[seq]; {
		case q.cancelled[seq]:
			e.state, e.cancelled = stateCancelled, true
		case done && exit == 0:
			e.state = stateOK
		case done:
			e.state, e.exit = stateFailed, exit
		default:
			e.state = statePending
		}
		if e.state.terminal() {
			e.done = closedChan
		} else {
			e.done = make(chan struct{})
		}
		q.jobs[seq] = e
		q.counts[e.state]++
	}
}

func (q *queue) closeFiles() error {
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	keep(q.wal.Close())
	keep(q.topic.Close())
	q.bus.Close()
	if q.spanDone != nil {
		<-q.spanDone // pump ends once the bus closes its subscription
		keep(q.spanRec.Close())
		keep(q.spanW.Flush())
		keep(q.spanF.Sync())
		keep(q.spanF.Close())
	}
	keep(q.cancelF.Close())
	return firstErr
}

// config returns the queue's current policy.
func (q *queue) config() QueueConfig {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.cfg
}

// Name returns the queue name.
func (q *queue) Name() string { return q.name }

// fail marks the queue broken (a WAL append failure, an engine abort):
// submits and cancels are refused until the operator restarts the
// daemon — a queue that can no longer log durably must not keep
// acking.
func (q *queue) fail(err error) {
	q.mu.Lock()
	if q.broken == nil {
		q.broken = err
	}
	q.mu.Unlock()
	q.srv.logf("jobd: queue %q failed: %v", q.name, err)
}

func (q *queue) usable() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.usableLocked()
}

func (q *queue) usableLocked() error {
	if q.closed {
		return ErrClosed
	}
	if q.broken != nil {
		return q.broken
	}
	return nil
}

// ensureEntryLocked returns seq's table row, creating a pending one if
// the event/tap side observed the job before Submit's table insert
// (the topic append wakes the engine's long-poll before Submit regains
// the lock — benign, but the row must exist).
func (q *queue) ensureEntryLocked(seq int) *jobEntry {
	e := q.jobs[seq]
	if e == nil {
		e = &jobEntry{done: make(chan struct{})}
		q.jobs[seq] = e
		q.counts[statePending]++
		if seq > q.submitted {
			q.submitted = seq
		}
	}
	return e
}

// Submit appends each command to the queue: topic append (the accept),
// WAL intent (the durable promise to run), table row, then ack. On a
// mid-batch error the successfully appended prefix is returned with
// the error — those jobs are accepted and will run.
func (q *queue) Submit(commands []string) ([]int, error) {
	if len(commands) == 0 {
		return nil, fmt.Errorf("jobd: empty submit")
	}
	if err := q.usable(); err != nil {
		return nil, err
	}
	seqs := make([]int, 0, len(commands))
	for _, cmd := range commands {
		if cmd == "" {
			return seqs, fmt.Errorf("jobd: empty command")
		}
		tseq, err := q.topic.Append([]byte(cmd))
		if err != nil {
			q.fail(err)
			return seqs, err
		}
		seq := int(tseq) + 1
		if err := q.wal.AppendIntent(seq, wal.ArgsDigest([]string{cmd})); err != nil {
			q.fail(err)
			return seqs, err
		}
		now := time.Now()
		q.mu.Lock()
		e := q.ensureEntryLocked(seq)
		e.submitted = now
		if seq > q.submitted {
			q.submitted = seq
		}
		q.mu.Unlock()
		q.met.submitted.Inc()
		seqs = append(seqs, seq)
	}
	return seqs, nil
}

// Status returns seq's current JobStatus.
func (q *queue) Status(seq int) (JobStatus, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	e := q.jobs[seq]
	if e == nil {
		return JobStatus{}, fmt.Errorf("%w: job %s/%d", ErrNotFound, q.name, seq)
	}
	return q.statusLocked(seq, e), nil
}

// Wait blocks until seq is terminal, ctx is done, or timeout elapses,
// then returns the current status (callers inspect State to tell which).
func (q *queue) Wait(ctx context.Context, seq int, timeout time.Duration) (JobStatus, error) {
	q.mu.Lock()
	e := q.jobs[seq]
	if e == nil {
		q.mu.Unlock()
		return JobStatus{}, fmt.Errorf("%w: job %s/%d", ErrNotFound, q.name, seq)
	}
	done := e.done
	q.mu.Unlock()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	select {
	case <-done:
	case <-ctx.Done():
	}
	return q.Status(seq)
}

// Cancel stops seq: a pending job becomes terminal immediately (the
// engine will later skip it), a running job's context is cancelled. The
// decision is persisted to the cancel log before it is acted on, so a
// restart cannot resurrect a cancelled job.
func (q *queue) Cancel(seq int) (JobStatus, error) {
	if err := q.usable(); err != nil {
		return JobStatus{}, err
	}
	q.mu.Lock()
	e := q.jobs[seq]
	if e == nil {
		q.mu.Unlock()
		return JobStatus{}, fmt.Errorf("%w: job %s/%d", ErrNotFound, q.name, seq)
	}
	if e.state.terminal() {
		st := q.statusLocked(seq, e)
		q.mu.Unlock()
		return st, ErrAlreadyDone
	}
	already := e.cancelled
	q.mu.Unlock()

	if !already {
		// Persist outside q.mu: the fsync must not stall submits.
		if err := q.appendCancelLog(seq); err != nil {
			return JobStatus{}, err
		}
	}

	q.mu.Lock()
	e = q.jobs[seq]
	e.cancelled = true
	q.cancelled[seq] = true
	var kill context.CancelFunc
	switch e.state {
	case statePending:
		q.counts[statePending]--
		e.state = stateCancelled
		q.counts[stateCancelled]++
		e.ended = time.Now()
		close(e.done)
		q.met.completed(stateCancelled)
	case stateRunning:
		kill = q.cancels[seq]
	}
	st := q.statusLocked(seq, e)
	q.mu.Unlock()
	if kill != nil {
		kill()
	}
	return st, nil
}

func (q *queue) appendCancelLog(seq int) error {
	q.cancelMu.Lock()
	defer q.cancelMu.Unlock()
	if _, err := fmt.Fprintf(q.cancelF, "%d\n", seq); err != nil {
		return err
	}
	return q.cancelF.Sync()
}

// isCancelled reports whether seq is in the cancel set.
func (q *queue) isCancelled(seq int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.cancelled[seq]
}

// armCancel installs the kill switch for a dispatched job. When the
// job was cancelled while waiting for its fair-share slot, it reports
// already=true and the runner skips execution.
func (q *queue) armCancel(ctx context.Context, seq int) (jctx context.Context, cancel context.CancelFunc, already bool, submitted time.Time) {
	q.mu.Lock()
	defer q.mu.Unlock()
	e := q.ensureEntryLocked(seq)
	if e.cancelled {
		return nil, nil, true, time.Time{}
	}
	jctx, cancel = context.WithCancel(ctx)
	q.cancels[seq] = cancel
	return jctx, cancel, false, e.submitted
}

func (q *queue) disarmCancel(seq int) {
	q.mu.Lock()
	delete(q.cancels, seq)
	q.mu.Unlock()
}

// onEvent is the bus tap that keeps the job table in lockstep with the
// engine's lifecycle events. It runs inside Publish on engine
// goroutines: table transition under the lock, metrics after.
func (q *queue) onEvent(ev core.Event) {
	switch ev.Type {
	case core.EventStarted:
		q.mu.Lock()
		e := q.ensureEntryLocked(ev.Seq)
		if e.state == statePending {
			q.counts[statePending]--
			e.state = stateRunning
			q.counts[stateRunning]++
			e.started = ev.Time
		}
		q.mu.Unlock()
	case core.EventFinished, core.EventKilled:
		q.mu.Lock()
		e := q.ensureEntryLocked(ev.Seq)
		if e.state.terminal() {
			// Cancelled-while-pending: the runner's skip result arrives
			// after Cancel already settled the row.
			q.mu.Unlock()
			return
		}
		q.counts[e.state]--
		switch {
		case e.cancelled:
			e.state = stateCancelled
		case ev.OK:
			e.state = stateOK
		default:
			e.state = stateFailed
		}
		q.counts[e.state]++
		e.exit = ev.ExitCode
		e.ended = ev.Time
		final := e.state
		close(e.done)
		q.mu.Unlock()
		q.met.completed(final)
		if ev.DispatchDelay > 0 {
			q.met.dispatch.ObserveDuration(ev.DispatchDelay)
		}
	}
}

// source yields the topic's messages in order as engine input,
// long-polling at the tail. drain ends the generation gracefully; ctx
// force-cancels it.
func (q *queue) source(ctx context.Context, drain <-chan struct{}) args.Source {
	var next int64
	return args.SourceFunc(func() ([]string, error) {
		for {
			select {
			case <-ctx.Done():
				return nil, io.EOF
			case <-drain:
				return nil, io.EOF
			default:
			}
			msg, err := q.topic.Read(next)
			if err == nil {
				next++
				return []string{string(msg)}, nil
			}
			if !errors.Is(err, mq.ErrOutOfRange) {
				return nil, err
			}
			select {
			case <-q.topic.WaitFor(next):
			case <-ctx.Done():
				return nil, io.EOF
			case <-drain:
				return nil, io.EOF
			}
		}
	})
}

// jobTemplate renders each topic message (one raw command string) as
// the job command verbatim.
var jobTemplate = tmpl.MustParse("{}")

// startEngineLocked starts a new engine generation against the current
// WAL state. Caller holds engMu. The service's resume rule differs
// from one-shot --resume in one deliberate way: any recorded
// completion — success or failure — is terminal (clients resubmit
// failures; a restart must not surprise-rerun them). Cancelled seqs
// are folded in so a cancel outlives the generation that observed it.
func (q *queue) startEngineLocked(st *wal.State) error {
	q.mu.Lock()
	resume := make(map[int]bool, len(st.Completed)+len(q.cancelled))
	for seq := range st.Completed {
		resume[seq] = true
	}
	for seq := range q.cancelled {
		resume[seq] = true
	}
	quota := q.cfg.Quota
	q.mu.Unlock()

	spec := &core.Spec{
		Jobs:       quota,
		Template:   jobTemplate,
		Retries:    1,
		WAL:        q.wal,
		WALDigests: st.Digests,
		ResumeFrom: resume,
		OnEvent:    q.bus.Publish,
	}
	if q.srv.cfg.Results {
		spec.ResultsDir = filepath.Join(q.dir, "results")
	}
	eng, err := core.NewEngine(spec, &queueRunner{q: q})
	if err != nil {
		return err
	}
	drain := make(chan struct{})
	done := make(chan struct{})
	q.drain, q.engDone = drain, done
	ctx := q.srv.ctx
	go func() {
		defer close(done)
		if rec := q.srv.cfg.Flight; rec != nil {
			// A panicking engine still kills the daemon (DumpOnPanic
			// re-panics), but the black box hits the disk first.
			defer flight.DumpOnPanic(rec, q.srv.cfg.FlightDir, q.srv.logf)
		}
		_, _, runErr := eng.Run(ctx, q.source(ctx, drain))
		if runErr != nil && ctx.Err() == nil && !errors.Is(runErr, context.Canceled) {
			q.fail(runErr)
		}
	}()
	return nil
}

// setConfig persists a policy change. Weight applies to the next
// grant; a quota change drains the current engine generation (running
// jobs finish) and starts a new one resuming from the WAL snapshot.
func (q *queue) setConfig(cfg QueueConfig) error {
	q.engMu.Lock()
	defer q.engMu.Unlock()
	if err := q.usable(); err != nil {
		return err
	}
	q.mu.Lock()
	old := q.cfg
	q.cfg = cfg
	q.mu.Unlock()
	if err := writeQueueConfig(filepath.Join(q.dir, "queue.json"), cfg); err != nil {
		return err
	}
	q.srv.sched.setWeight(q.sq, cfg.Weight)
	if cfg.Quota == old.Quota {
		return nil
	}
	close(q.drain)
	<-q.engDone
	if err := q.usable(); err != nil {
		return err
	}
	st, err := q.wal.Snapshot()
	if err != nil {
		q.fail(err)
		return err
	}
	q.srv.logf("jobd: queue %q quota %d -> %d (engine generation restarted)", q.name, old.Quota, cfg.Quota)
	return q.startEngineLocked(st)
}

// beginStop closes the submit window and the engine's drain gate,
// returning the generation's done channel for the server to await.
func (q *queue) beginStop() <-chan struct{} {
	q.engMu.Lock()
	defer q.engMu.Unlock()
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	select {
	case <-q.drain:
	default:
		close(q.drain)
	}
	return q.engDone
}

// finishClose releases the queue's resources after its engine stopped.
func (q *queue) finishClose() error {
	q.srv.sched.unregister(q.sq)
	if q.srv.cfg.Flight != nil {
		q.srv.cfg.Flight.RemoveSource(q.flightSourceName())
	}
	return q.closeFiles()
}

// stats snapshots the queue's aggregate counters.
func (q *queue) stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := QueueStats{
		Name:      q.name,
		Quota:     q.cfg.Quota,
		Weight:    q.cfg.Weight,
		Submitted: q.submitted,
		Pending:   q.counts[statePending],
		Running:   q.counts[stateRunning],
		OK:        q.counts[stateOK],
		Failed:    q.counts[stateFailed],
		Cancelled: q.counts[stateCancelled],
	}
	if q.broken != nil {
		st.Error = q.broken.Error()
	}
	return st
}

// Jobs lists up to limit job statuses, newest first, optionally
// filtered by state name ("" = all).
func (q *queue) Jobs(stateFilter string, limit int) []JobStatus {
	if limit <= 0 {
		limit = 1000
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]JobStatus, 0, min(limit, len(q.jobs)))
	for seq := q.submitted; seq >= 1 && len(out) < limit; seq-- {
		e := q.jobs[seq]
		if e == nil {
			continue
		}
		if stateFilter != "" && e.state.String() != stateFilter {
			continue
		}
		out = append(out, q.statusLocked(seq, e))
	}
	return out
}

// Watch subscribes to the queue's live event stream. The caller must
// call the returned cancel function when done (client disconnect), or
// the subscription would outlive them.
func (q *queue) Watch(buf int) (*telemetry.Subscription, func()) {
	sub := q.bus.Subscribe(buf)
	return sub, func() { q.bus.Unsubscribe(sub) }
}

// QueueStats is the /v1/queues wire shape.
type QueueStats struct {
	Name      string `json:"name"`
	Quota     int    `json:"quota"`
	Weight    int    `json:"weight"`
	Submitted int    `json:"submitted"`
	Pending   int    `json:"pending"`
	Running   int    `json:"running"`
	OK        int    `json:"ok"`
	Failed    int    `json:"failed"`
	Cancelled int    `json:"cancelled"`
	Error     string `json:"error,omitempty"`
}

// JobStatus is the per-job wire shape. ID is "<queue>/<seq>".
type JobStatus struct {
	ID          string `json:"id"`
	Queue       string `json:"queue"`
	Seq         int    `json:"seq"`
	State       string `json:"state"`
	Exit        int    `json:"exit"`
	Cancelled   bool   `json:"cancelled,omitempty"`
	SubmittedAt string `json:"submitted_at,omitempty"`
	StartedAt   string `json:"started_at,omitempty"`
	EndedAt     string `json:"ended_at,omitempty"`
}

func (q *queue) statusLocked(seq int, e *jobEntry) JobStatus {
	st := JobStatus{
		ID:        q.name + "/" + strconv.Itoa(seq),
		Queue:     q.name,
		Seq:       seq,
		State:     e.state.String(),
		Exit:      e.exit,
		Cancelled: e.cancelled,
	}
	if !e.submitted.IsZero() {
		st.SubmittedAt = e.submitted.UTC().Format(time.RFC3339Nano)
	}
	if !e.started.IsZero() {
		st.StartedAt = e.started.UTC().Format(time.RFC3339Nano)
	}
	if !e.ended.IsZero() {
		st.EndedAt = e.ended.UTC().Format(time.RFC3339Nano)
	}
	return st
}
