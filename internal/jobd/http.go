package jobd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// Handler returns the service's HTTP/JSON API:
//
//	POST   /v1/queues/{queue}/jobs       submit (single or batch)
//	GET    /v1/queues/{queue}/jobs       list jobs; ?watch=1 streams events
//	GET    /v1/queues/{queue}            one queue's stats
//	PUT    /v1/queues/{queue}            create / reconfigure a queue
//	GET    /v1/queues                    all queues' quota/backlog stats
//	GET    /v1/jobs/{queue}/{seq}        job status; ?wait=30s long-polls
//	DELETE /v1/jobs/{queue}/{seq}        cancel
//	GET    /metrics                      Prometheus text
//	GET    /healthz                      liveness
//
// Job IDs are "<queue>/<seq>", so the /v1/jobs/{queue}/{seq} routes
// are exactly GET|DELETE /v1/jobs/{id}. docs/SERVICE.md documents the
// wire shapes and durability semantics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/queues/{queue}/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/queues/{queue}/jobs", s.handleJobsList)
	mux.HandleFunc("GET /v1/queues/{queue}", s.handleQueueGet)
	mux.HandleFunc("PUT /v1/queues/{queue}", s.handleQueuePut)
	mux.HandleFunc("GET /v1/queues", s.handleQueues)
	mux.HandleFunc("GET /v1/jobs/{queue}/{seq}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{queue}/{seq}", s.handleJobCancel)
	mux.Handle("GET /metrics", telemetry.Handler(s.reg))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// SubmitRequest is the POST /v1/queues/{q}/jobs body: one command or a
// batch (exactly one of the two).
type SubmitRequest struct {
	Command  string   `json:"command,omitempty"`
	Commands []string `json:"commands,omitempty"`
}

// SubmitResponse acks accepted jobs. On a mid-batch failure the
// accepted prefix is still reported alongside the error (HTTP 500).
type SubmitResponse struct {
	Queue string   `json:"queue"`
	Seqs  []int    `json:"seqs"`
	IDs   []string `json:"ids"`
	Error string   `json:"error,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpErr(w, http.StatusBadRequest, fmt.Errorf("jobd: bad submit body: %w", err))
		return
	}
	commands := req.Commands
	if req.Command != "" {
		if len(commands) > 0 {
			httpErr(w, http.StatusBadRequest, errors.New("jobd: set either command or commands, not both"))
			return
		}
		commands = []string{req.Command}
	}
	q, err := s.EnsureQueue(r.PathValue("queue"))
	if err != nil {
		writeErr(w, err)
		return
	}
	seqs, err := q.Submit(commands)
	resp := SubmitResponse{Queue: q.Name(), Seqs: seqs, IDs: make([]string, len(seqs))}
	for i, seq := range seqs {
		resp.IDs[i] = q.Name() + "/" + strconv.Itoa(seq)
	}
	if err != nil {
		resp.Error = err.Error()
		writeJSON(w, errStatus(err), resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleQueues(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"queues": s.Stats()})
}

func (s *Server) handleQueueGet(w http.ResponseWriter, r *http.Request) {
	q, err := s.Queue(r.PathValue("queue"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, q.stats())
}

func (s *Server) handleQueuePut(w http.ResponseWriter, r *http.Request) {
	var cfg QueueConfig
	if err := json.NewDecoder(r.Body).Decode(&cfg); err != nil {
		httpErr(w, http.StatusBadRequest, fmt.Errorf("jobd: bad queue config: %w", err))
		return
	}
	q, err := s.ConfigureQueue(r.PathValue("queue"), cfg)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, q.stats())
}

func (s *Server) handleJobsList(w http.ResponseWriter, r *http.Request) {
	q, err := s.Queue(r.PathValue("queue"))
	if err != nil {
		writeErr(w, err)
		return
	}
	if r.URL.Query().Get("watch") != "" {
		s.watch(w, r, q)
		return
	}
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		limit, _ = strconv.Atoi(v)
	}
	jobs := q.Jobs(r.URL.Query().Get("state"), limit)
	writeJSON(w, http.StatusOK, map[string]any{"queue": q.Name(), "jobs": jobs})
}

// WatchEvent is one line of the ?watch=1 chunked JSONL stream: a
// lifecycle event off the queue's telemetry bus.
type WatchEvent struct {
	Type       string `json:"type"` // queued | started | retried | finished | killed
	ID         string `json:"id"`
	Seq        int    `json:"seq"`
	Slot       int    `json:"slot,omitempty"`
	OK         bool   `json:"ok,omitempty"`
	Exit       int    `json:"exit,omitempty"`
	DurationMS int64  `json:"duration_ms,omitempty"`
	Time       string `json:"time"`
}

// watch streams the queue's live events as chunked JSONL until the
// client goes away or the queue's bus closes (daemon shutdown). The
// subscription is bounded and lossy — a slow watcher drops events
// rather than stalling the dispatch pipeline (mq's long-poll idiom,
// inverted: the server pushes, the client's read is the poll).
func (s *Server) watch(w http.ResponseWriter, r *http.Request, q *queue) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpErr(w, http.StatusNotImplemented, errors.New("jobd: streaming unsupported"))
		return
	}
	sub, stop := q.Watch(4096)
	defer stop()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	enc := json.NewEncoder(w)
	for {
		select {
		case ev, open := <-sub.C:
			if !open {
				return
			}
			we := WatchEvent{
				Type: ev.Type.String(),
				ID:   q.Name() + "/" + strconv.Itoa(ev.Seq),
				Seq:  ev.Seq,
				Slot: ev.Slot,
				OK:   ev.OK,
				Exit: ev.ExitCode,
				Time: ev.Time.UTC().Format(time.RFC3339Nano),
			}
			if ev.Type == core.EventFinished || ev.Type == core.EventKilled {
				we.DurationMS = ev.Duration.Milliseconds()
			}
			if err := enc.Encode(we); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) jobFromPath(r *http.Request) (*queue, int, error) {
	q, err := s.Queue(r.PathValue("queue"))
	if err != nil {
		return nil, 0, err
	}
	seq, err := strconv.Atoi(r.PathValue("seq"))
	if err != nil || seq < 1 {
		return nil, 0, fmt.Errorf("%w: bad job seq %q", ErrNotFound, r.PathValue("seq"))
	}
	return q, seq, nil
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	q, seq, err := s.jobFromPath(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	var st JobStatus
	if v := r.URL.Query().Get("wait"); v != "" {
		d, perr := time.ParseDuration(v)
		if perr != nil || d < 0 {
			httpErr(w, http.StatusBadRequest, fmt.Errorf("jobd: bad wait duration %q", v))
			return
		}
		st, err = q.Wait(r.Context(), seq, d)
	} else {
		st, err = q.Status(seq)
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	q, seq, err := s.jobFromPath(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	st, err := q.Cancel(seq)
	if errors.Is(err, ErrAlreadyDone) {
		writeJSON(w, http.StatusConflict, st)
		return
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func errStatus(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrAlreadyDone):
		return http.StatusConflict
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeErr(w http.ResponseWriter, err error) {
	httpErr(w, errStatus(err), err)
}

func httpErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
