package jobd

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// occupant parks a goroutine holding one slot of sq until release is
// closed. It returns once the slot is held.
func occupant(t *testing.T, s *scheduler, sq *schedQueue) (release func()) {
	t.Helper()
	held := make(chan struct{})
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := s.acquire(context.Background(), sq); err != nil {
			t.Errorf("occupant acquire: %v", err)
			return
		}
		close(held)
		<-stop
		s.release(sq)
	}()
	<-held
	return func() { close(stop); <-done }
}

// backlog spawns n waiters on sq. Each granted waiter sends its tag on
// grants, then immediately releases its slot, driving the next grant.
// The caller must be holding every pool slot (via occupant) so that
// waiters pile up instead of being granted; each registration is
// confirmed by watching sq.waiting grow before spawning the next.
func backlog(t *testing.T, s *scheduler, sq *schedQueue, tag string, n int, grants chan<- string, wg *sync.WaitGroup) {
	t.Helper()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.acquire(context.Background(), sq); err != nil {
				t.Errorf("backlog acquire: %v", err)
				return
			}
			grants <- tag
			s.release(sq)
		}()
		deadline := time.Now().Add(2 * time.Second)
		for {
			s.mu.Lock()
			enqueued := len(sq.waiting) >= i+1
			s.mu.Unlock()
			if enqueued {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("waiter %d for %s never enqueued", i, tag)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// TestSchedulerWeightedShare pins the WFQ isolation property: with one
// slot contended 3:1, the heavy queue gets 3/4 of the grants and the
// light queue still gets its 1/4 — a saturating tenant cannot starve
// its neighbor.
func TestSchedulerWeightedShare(t *testing.T) {
	s, err := newScheduler(1)
	if err != nil {
		t.Fatal(err)
	}
	control := s.register(1)
	release := occupant(t, s, control)

	heavy := s.register(3)
	light := s.register(1)
	grants := make(chan string, 64)
	var wg sync.WaitGroup
	backlog(t, s, heavy, "heavy", 30, grants, &wg)
	backlog(t, s, light, "light", 30, grants, &wg)

	release() // open the floodgates: grants now proceed one at a time

	counts := map[string]int{}
	for i := 0; i < 24; i++ {
		select {
		case tag := <-grants:
			counts[tag]++
		case <-time.After(5 * time.Second):
			t.Fatalf("stalled after %d grants (counts %v)", i, counts)
		}
	}
	// WFQ with weights 3:1 is deterministic up to ties: heavy must land
	// within one grant of 18/24, light within one of 6/24.
	if counts["heavy"] < 17 || counts["heavy"] > 19 {
		t.Fatalf("heavy got %d of 24 grants, want 18±1 (light %d)", counts["heavy"], counts["light"])
	}
	if counts["light"] < 5 {
		t.Fatalf("light starved: %d of 24 grants, want >= 5", counts["light"])
	}

	// Drain the remaining backlog so wg completes.
	for counts["heavy"]+counts["light"] < 60 {
		select {
		case tag := <-grants:
			counts[tag]++
		case <-time.After(5 * time.Second):
			t.Fatalf("drain stalled at %v", counts)
		}
	}
	wg.Wait()
}

// TestSchedulerFloorClamp proves an idle tenant cannot bank virtual
// time while inactive and later monopolize the pool: after A runs 20
// uncontended grants, a newly active B alternates with it instead of
// sweeping 20 consecutive slots.
func TestSchedulerFloorClamp(t *testing.T) {
	s, err := newScheduler(1)
	if err != nil {
		t.Fatal(err)
	}
	a := s.register(1)
	b := s.register(1)

	for i := 0; i < 20; i++ {
		if err := s.acquire(context.Background(), a); err != nil {
			t.Fatal(err)
		}
		s.release(a)
	}

	hold := occupant(t, s, a)
	grants := make(chan string, 64)
	var wg sync.WaitGroup
	backlog(t, s, a, "a", 10, grants, &wg)
	backlog(t, s, b, "b", 10, grants, &wg)
	hold()

	var order []string
	for i := 0; i < 10; i++ {
		select {
		case tag := <-grants:
			order = append(order, tag)
		case <-time.After(5 * time.Second):
			t.Fatalf("stalled after %v", order)
		}
	}
	bRun := 0
	maxBRun := 0
	for _, tag := range order {
		if tag == "b" {
			bRun++
			if bRun > maxBRun {
				maxBRun = bRun
			}
		} else {
			bRun = 0
		}
	}
	if maxBRun > 2 {
		t.Fatalf("b swept %d consecutive grants after idling — floor clamp broken (order %v)", maxBRun, order)
	}
	for len(order) < 20 {
		select {
		case tag := <-grants:
			order = append(order, tag)
		case <-time.After(5 * time.Second):
			t.Fatalf("drain stalled at %v", order)
		}
	}
	wg.Wait()
}

// TestSchedulerAcquireCancel: a cancelled waiter must not leak the slot
// it never got.
func TestSchedulerAcquireCancel(t *testing.T) {
	s, err := newScheduler(1)
	if err != nil {
		t.Fatal(err)
	}
	q := s.register(1)
	release := occupant(t, s, q)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- s.acquire(ctx, q) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("acquire = %v, want context.Canceled", err)
	}
	release()

	// The pool must be whole again: an uncontended acquire succeeds.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	if err := s.acquire(ctx2, q); err != nil {
		t.Fatalf("post-cancel acquire: %v", err)
	}
	s.release(q)
}

// TestSchedulerStress hammers acquire/release/cancel from many
// goroutines and then checks the slot accounting invariant:
// free + Σrunning == slots once everything quiesces.
func TestSchedulerStress(t *testing.T) {
	const slots = 4
	s, err := newScheduler(slots)
	if err != nil {
		t.Fatal(err)
	}
	qs := []*schedQueue{s.register(1), s.register(2), s.register(5)}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				sq := qs[rng.Intn(len(qs))]
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if rng.Intn(3) == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(200))*time.Microsecond)
				}
				if err := s.acquire(ctx, sq); err == nil {
					if rng.Intn(4) == 0 {
						time.Sleep(time.Duration(rng.Intn(50)) * time.Microsecond)
					}
					s.release(sq)
				}
				cancel()
			}
		}(int64(g))
	}
	wg.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	total := s.free
	for _, q := range s.qs {
		total += q.running
		if q.running < 0 {
			t.Fatalf("queue running went negative: %d", q.running)
		}
		if len(q.waiting) != 0 {
			t.Fatalf("leaked waiter on quiesced queue")
		}
	}
	if total != slots {
		t.Fatalf("slot accounting broken: free %d + running = %d, want %d", s.free, total, slots)
	}
}
