package profile

import (
	"bytes"
	"encoding/json"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestChromeTraceFormat(t *testing.T) {
	entries := []core.JoblogEntry{
		{Seq: 1, Start: 100.0, Runtime: 2.0, Command: "echo a", Host: "n1"},
		{Seq: 2, Start: 100.5, Runtime: 1.0, Exitval: 3},
		{Seq: 3, Start: 102.5, Runtime: 1.0},
	}
	var buf bytes.Buffer
	if err := ChromeTrace(&buf, entries); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if len(events) != 3 {
		t.Fatalf("events = %d", len(events))
	}
	first := events[0]
	if first["ph"] != "X" || first["ts"].(float64) != 0 {
		t.Fatalf("first event = %v", first)
	}
	if first["dur"].(float64) != 2e6 {
		t.Fatalf("dur = %v", first["dur"])
	}
	// Jobs 1 and 2 overlap: distinct lanes. Job 3 starts after both
	// ended: lane 1 reused.
	tid1 := events[0]["tid"].(float64)
	tid2 := events[1]["tid"].(float64)
	tid3 := events[2]["tid"].(float64)
	if tid1 == tid2 {
		t.Fatalf("overlapping jobs share lane %v", tid1)
	}
	if tid3 != 1 {
		t.Fatalf("lane not reused: job3 on %v", tid3)
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := ChromeTrace(&buf, nil); err == nil {
		t.Fatal("empty joblog accepted")
	}
}

// Property: lane assignment is a proper interval coloring — no two
// overlapping jobs share a lane, and lane count == peak concurrency.
func TestPropertyLaneAssignment(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 || len(raw) > 60 {
			return true
		}
		entries := make([]core.JoblogEntry, len(raw)/2)
		for i := range entries {
			start := float64(raw[2*i]%1000) / 10
			dur := float64(raw[2*i+1]%100)/10 + 0.1
			entries[i] = core.JoblogEntry{Seq: i + 1, Start: start, Runtime: dur}
		}
		sortByStart := append([]core.JoblogEntry(nil), entries...)
		for i := 1; i < len(sortByStart); i++ {
			for j := i; j > 0 && sortByStart[j].Start < sortByStart[j-1].Start; j-- {
				sortByStart[j], sortByStart[j-1] = sortByStart[j-1], sortByStart[j]
			}
		}
		lanes := assignLanes(sortByStart)
		// No two overlapping intervals share a lane.
		for i := range sortByStart {
			for j := i + 1; j < len(sortByStart); j++ {
				if lanes[i] != lanes[j] {
					continue
				}
				aS, aE := sortByStart[i].Start, sortByStart[i].Start+sortByStart[i].Runtime
				bS, bE := sortByStart[j].Start, sortByStart[j].Start+sortByStart[j].Runtime
				// Same sub-quantum tolerance as the package's interval
				// arithmetic: float addition of grid-valued starts and
				// runtimes can otherwise manufacture ~1e-16 "overlaps".
				if aS < bE-quantum && bS < aE-quantum {
					return false
				}
			}
		}
		// Lane count equals peak concurrency.
		p, err := Analyze(entries)
		if err != nil {
			return false
		}
		maxLane := 0
		for _, l := range lanes {
			if l > maxLane {
				maxLane = l
			}
		}
		return maxLane+1 == p.PeakConcurrency
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
