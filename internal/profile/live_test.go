package profile

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func TestLiveTraceEmitsSlices(t *testing.T) {
	var sb strings.Builder
	lt := NewLiveTrace(&sb)
	t0 := time.Unix(1700000000, 0)

	// Queued/started events establish the origin but emit no slices.
	lt.Consume(core.Event{Type: core.EventQueued, Seq: 1, Time: t0})
	lt.Consume(core.Event{Type: core.EventStarted, Seq: 1, Slot: 2, Time: t0})
	lt.Consume(core.Event{Type: core.EventFinished, Seq: 1, Slot: 2, Attempt: 1,
		Time: t0.Add(150 * time.Millisecond), Command: "echo one", OK: true,
		Host: "n1", Duration: 100 * time.Millisecond})
	lt.Consume(core.Event{Type: core.EventKilled, Seq: 2, Slot: 1, Attempt: 2,
		Time: t0.Add(300 * time.Millisecond), ExitCode: -1,
		Duration: 50 * time.Millisecond})
	if err := lt.Close(); err != nil {
		t.Fatal(err)
	}

	var events []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(events) != 2 {
		t.Fatalf("slices = %d, want 2 (only finished/killed emit)", len(events))
	}
	first := events[0]
	if first["name"] != "echo one" || first["ph"] != "X" {
		t.Fatalf("first slice = %v", first)
	}
	if first["tid"].(float64) != 2 {
		t.Fatalf("tid = %v, want slot lane 2", first["tid"])
	}
	// start = end - duration = t0+50ms, so ts = 50000µs from origin.
	if ts := first["ts"].(float64); ts != 50000 {
		t.Fatalf("ts = %v µs, want 50000", ts)
	}
	if dur := first["dur"].(float64); dur != 100000 {
		t.Fatalf("dur = %v µs, want 100000", dur)
	}
	args1 := first["args"].(map[string]any)
	if args1["host"] != "n1" || args1["killed"] != false {
		t.Fatalf("args = %v", args1)
	}
	args2 := events[1]["args"].(map[string]any)
	if args2["killed"] != true {
		t.Fatalf("killed slice args = %v", args2)
	}
	if events[1]["name"] != "job 2" {
		t.Fatalf("fallback name = %v", events[1]["name"])
	}
}

func TestLiveTraceIncrementalPrefixLoads(t *testing.T) {
	// A trace cut off mid-run (no Close) must still be recoverable: the
	// Chrome JSON-array format tolerates a missing terminator, and each
	// appended record is complete JSON after the separator.
	var sb strings.Builder
	lt := NewLiveTrace(&sb)
	t0 := time.Unix(1700000000, 0)
	for i := 1; i <= 3; i++ {
		lt.Consume(core.Event{Type: core.EventFinished, Seq: i, Slot: i,
			Time: t0.Add(time.Duration(i) * time.Second), OK: true,
			Duration: 100 * time.Millisecond})
	}
	cut := sb.String() // no Close
	var events []map[string]any
	if err := json.Unmarshal([]byte(cut+"\n]"), &events); err != nil {
		t.Fatalf("truncated trace unrecoverable: %v\n%s", err, cut)
	}
	if len(events) != 3 {
		t.Fatalf("recovered %d slices, want 3", len(events))
	}
}

func TestLiveTraceEmptyClose(t *testing.T) {
	var sb strings.Builder
	lt := NewLiveTrace(&sb)
	if err := lt.Close(); err != nil {
		t.Fatal(err)
	}
	var events []any
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil || len(events) != 0 {
		t.Fatalf("empty trace = %q (err %v)", sb.String(), err)
	}
	// Consume after Close is ignored, not a panic or corruption.
	lt.Consume(core.Event{Type: core.EventFinished, Seq: 1, Time: time.Unix(0, 1)})
	if !strings.HasPrefix(sb.String(), "[]") || strings.Contains(sb.String(), `"ph"`) {
		t.Fatalf("post-close consume corrupted output: %q", sb.String())
	}
}

func TestLiveTraceTruncatesLongCommands(t *testing.T) {
	var sb strings.Builder
	lt := NewLiveTrace(&sb)
	long := strings.Repeat("x", 200)
	lt.Consume(core.Event{Type: core.EventFinished, Seq: 1, Slot: 1,
		Time: time.Unix(1700000000, 0), Command: long, OK: true, Duration: time.Millisecond})
	lt.Close()
	var events []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatal(err)
	}
	name := events[0]["name"].(string)
	if len(name) != 80 || !strings.HasSuffix(name, "...") {
		t.Fatalf("name length = %d (%q...)", len(name), name[:10])
	}
}
