package profile

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flight"
)

// TestFlightTrace renders a recorder dump and checks the output is a
// loadable Chrome trace: a JSON array of events with complete slices
// for finished jobs, an open slice for the job still running at dump
// time, counter series for snapshots, and an instant for the anomaly.
func TestFlightTrace(t *testing.T) {
	r := flight.New(flight.Options{EventBuf: 256, Program: "traceprog"})
	now := time.Now()
	ev := func(seq int, typ core.EventType) core.Event {
		e := core.Event{Type: typ, Seq: seq, Slot: 1 + seq%4, Time: now.Add(time.Duration(seq) * time.Millisecond), Command: "work --n"}
		if typ == core.EventFinished {
			e.OK = true
			e.Duration = 5 * time.Millisecond
		}
		return e
	}
	for i := 1; i <= 5; i++ {
		r.RecordEvent(ev(i, core.EventQueued))
		r.RecordEvent(ev(i, core.EventStarted))
		if i < 5 { // job 5 stays running at dump time
			r.RecordEvent(ev(i, core.EventFinished))
		}
	}
	r.Diag("dispatch-p99", "p99 2ms exceeds ceiling 1ms")
	r.Tick()
	d := r.Dump()

	var buf bytes.Buffer
	if err := FlightTrace(&buf, d); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v\n%s", err, buf.String())
	}
	counts := map[string]int{}
	open := 0
	for _, e := range events {
		ph, _ := e["ph"].(string)
		counts[ph]++
		if args, ok := e["args"].(map[string]any); ok && args["open"] == true {
			open++
		}
		if ph == "X" {
			if _, ok := e["dur"].(float64); !ok {
				t.Fatalf("X slice without dur: %v", e)
			}
		}
	}
	if counts["X"] != 5 { // 4 finished + 1 open
		t.Fatalf("slices = %d, want 5 (events %v)", counts["X"], counts)
	}
	if open != 1 {
		t.Fatalf("open-at-dump slices = %d, want 1", open)
	}
	if counts["C"] == 0 {
		t.Fatalf("no counter events for snapshots: %v", counts)
	}
	if counts["i"] != 1 {
		t.Fatalf("instant events = %d, want 1 anomaly flag", counts["i"])
	}
	if counts["M"] < 2 {
		t.Fatalf("metadata events = %d, want >= 2", counts["M"])
	}
}

// TestFlightTraceEmpty checks an empty dump renders an empty, valid
// array rather than erroring.
func TestFlightTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := FlightTrace(&buf, &flight.Dump{Version: flight.DumpVersion}); err != nil {
		t.Fatal(err)
	}
	var events []any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil || len(events) != 0 {
		t.Fatalf("empty dump trace = %q (err %v), want []", buf.String(), err)
	}
}
