package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/flight"
)

// FlightTrace renders a flight-recorder dump as a Chrome/Perfetto
// trace (chrome://tracing JSON array format), the `gopar debug
// -trace` backend:
//
//   - job executions become complete ("X") slices on their slot lane,
//     paired started→finished/killed by job seq; a job still running
//     at dump time becomes a slice open until the dump instant;
//   - component snapshots become counter ("C") series, one per
//     source, so queue depth, WAL lag and pool health plot as stacked
//     charts under the slices;
//   - anomalies and other diagnostics become instant ("i") events on
//     their own lane, so a p99 breach lines up visually with the jobs
//     that caused it.
//
// Terminal events carry only the final attempt's Duration, so for a
// retried job the rendered slice covers the last attempt — consistent
// with LiveTrace.
func FlightTrace(w io.Writer, d *flight.Dump) error {
	if len(d.Records) == 0 {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	t0 := d.Records[0].Time
	for _, rec := range d.Records {
		if rec.Time.Before(t0) {
			t0 = rec.Time
		}
	}
	us := func(t time.Time) float64 { return float64(t.Sub(t0)) / float64(time.Microsecond) }

	var events []map[string]any
	meta := func(pid int, name string) {
		events = append(events, map[string]any{
			"name": "process_name", "ph": "M", "pid": pid,
			"args": map[string]any{"name": name},
		})
	}
	meta(1, fmt.Sprintf("%s jobs (pid %d)", orDump(d.Program), d.PID))
	meta(2, "flight diagnostics")

	// started-event times by job seq, for pairing with terminals. A
	// terminal without a retained start still renders (End-Duration
	// reconstructs the attempt start); a start without a terminal is
	// open at dump time.
	type open struct {
		t    time.Time
		slot int
		cmd  string
	}
	started := map[int]open{}
	for _, rec := range d.Records {
		switch rec.Kind {
		case "event":
			e := rec.Event
			if e == nil {
				continue
			}
			switch e.Type {
			case "started":
				started[e.Seq] = open{t: rec.Time, slot: e.Slot, cmd: e.Command}
			case "finished", "killed":
				st, ok := started[e.Seq]
				delete(started, e.Seq)
				end := rec.Time
				var start time.Time
				switch {
				case ok:
					start = st.t
				case e.DurationMS > 0:
					start = end.Add(-time.Duration(e.DurationMS * float64(time.Millisecond)))
				default:
					start = end
				}
				events = append(events, map[string]any{
					"name": sliceName(e.Command, e.Seq),
					"ph":   "X",
					"ts":   us(start),
					"dur":  us(end) - us(start),
					"pid":  1,
					"tid":  laneFor(e.Slot, st.slot),
					"args": map[string]any{
						"seq": e.Seq, "ok": e.OK, "exitval": e.Exit,
						"host": e.Host, "killed": e.Type == "killed",
					},
				})
			}
		case "snapshot":
			if len(rec.Stats) == 0 {
				continue
			}
			events = append(events, map[string]any{
				"name": rec.Source,
				"ph":   "C",
				"ts":   us(rec.Time),
				"pid":  2,
				"args": rec.Stats,
			})
		case "anomaly":
			events = append(events, map[string]any{
				"name": rec.Source,
				"ph":   "i",
				"s":    "g", // global scope: draw the flag across all lanes
				"ts":   us(rec.Time),
				"pid":  2,
				"tid":  1,
				"args": map[string]any{"detail": rec.Detail},
			})
		}
	}
	// Jobs still running at dump time: open slices to the dump instant.
	for seq, st := range started {
		events = append(events, map[string]any{
			"name": sliceName(st.cmd, seq) + " (running at dump)",
			"ph":   "X",
			"ts":   us(st.t),
			"dur":  us(d.Time) - us(st.t),
			"pid":  1,
			"tid":  laneFor(st.slot, 0),
			"args": map[string]any{"seq": seq, "open": true},
		})
	}
	return json.NewEncoder(w).Encode(events)
}

func orDump(s string) string {
	if s == "" {
		return "flight"
	}
	return s
}

// laneFor prefers the terminal event's slot, falling back to the
// start event's, then lane 0 (events that never carried one).
func laneFor(a, b int) int {
	if a > 0 {
		return a
	}
	if b > 0 {
		return b
	}
	return 0
}

func sliceName(cmd string, seq int) string {
	if cmd == "" {
		return fmt.Sprintf("job %d", seq)
	}
	if len(cmd) > 80 {
		cmd = cmd[:77] + "..."
	}
	return cmd
}
