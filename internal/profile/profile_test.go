package profile

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/args"
	"repro/internal/core"
)

func entry(seq int, start, runtime float64, exit int) core.JoblogEntry {
	return core.JoblogEntry{Seq: seq, Start: start, Runtime: runtime, Exitval: exit}
}

func TestAnalyzeBasic(t *testing.T) {
	// Two jobs overlap [0,2) and [1,3): peak 2, makespan 3, work 4.
	p, err := Analyze([]core.JoblogEntry{
		entry(1, 100.0, 2.0, 0),
		entry(2, 101.0, 2.0, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Jobs != 2 || p.Failed != 0 {
		t.Fatalf("jobs/failed = %d/%d", p.Jobs, p.Failed)
	}
	if p.Makespan != 3*time.Second {
		t.Fatalf("makespan = %v", p.Makespan)
	}
	if p.TotalWork != 4*time.Second {
		t.Fatalf("work = %v", p.TotalWork)
	}
	if p.PeakConcurrency != 2 {
		t.Fatalf("peak = %d", p.PeakConcurrency)
	}
	if ep := p.EffectiveParallelism; ep < 1.32 || ep > 1.35 {
		t.Fatalf("effective parallelism = %v, want 4/3", ep)
	}
}

func TestAnalyzeSerial(t *testing.T) {
	p, _ := Analyze([]core.JoblogEntry{
		entry(1, 0, 1, 0), entry(2, 1, 1, 0), entry(3, 2, 1, 9),
	})
	if p.PeakConcurrency != 1 {
		t.Fatalf("peak = %d", p.PeakConcurrency)
	}
	if p.Failed != 1 {
		t.Fatalf("failed = %d", p.Failed)
	}
	if p.Utilization < 0.99 || p.Utilization > 1.01 {
		t.Fatalf("utilization = %v, want 1.0", p.Utilization)
	}
	if p.MeanDispatchGap != time.Second {
		t.Fatalf("gap = %v", p.MeanDispatchGap)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	if _, err := Analyze(nil); err == nil {
		t.Fatal("empty joblog accepted")
	}
}

func TestRecommendSlots(t *testing.T) {
	p := &Profile{Jobs: 1000, PeakConcurrency: 64}
	p.Runtime.Median = 0.5 // 500ms tasks
	// At 2.128ms dispatch, one dispatcher refills ~235 slots of 500ms
	// tasks; recommendation is bounded by that.
	got := p.RecommendSlots(2128 * time.Microsecond)
	if got < 200 || got > 260 {
		t.Fatalf("recommended slots = %d, want ~235", got)
	}
	// Short tasks: recommendation collapses toward 1/dispatch-bound.
	p.Runtime.Median = 0.004
	if got := p.RecommendSlots(2128 * time.Microsecond); got > 3 {
		t.Fatalf("short-task recommendation = %d, want <=3", got)
	}
	// Degenerate inputs fall back to peak.
	p.Runtime.Median = 0
	if got := p.RecommendSlots(time.Millisecond); got != p.PeakConcurrency {
		t.Fatalf("fallback = %d", got)
	}
}

func TestRenderAndSparkline(t *testing.T) {
	p, _ := Analyze([]core.JoblogEntry{
		entry(1, 0, 4, 0), entry(2, 0, 2, 0), entry(3, 2, 2, 0),
	})
	out := p.Render()
	for _, want := range []string{"jobs:", "makespan:", "peak concurrency:      2", "sparkline"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	spark := p.Sparkline(20)
	if len([]rune(spark)) != 20 {
		t.Fatalf("sparkline width = %d", len([]rune(spark)))
	}
	if (&Profile{}).Sparkline(10) != "" {
		t.Fatal("empty profile sparkline should be empty")
	}
}

func TestEndToEndFromEngineJoblog(t *testing.T) {
	// Run a real workload through the engine, then profile its joblog —
	// the paper's "extract a parallel profile" loop.
	var log bytes.Buffer
	runner := core.FuncRunner(func(ctx context.Context, job *core.Job) ([]byte, error) {
		time.Sleep(20 * time.Millisecond)
		return nil, nil
	})
	spec, _ := core.NewSpec("", 4)
	spec.Joblog = &log
	eng, _ := core.NewEngine(spec, runner)
	items := make([]string, 16)
	if _, _, err := eng.Run(context.Background(), args.Literal(items...)); err != nil {
		t.Fatal(err)
	}
	entries, err := core.ParseJoblog(&log)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Analyze(entries)
	if err != nil {
		t.Fatal(err)
	}
	if p.Jobs != 16 {
		t.Fatalf("jobs = %d", p.Jobs)
	}
	if p.PeakConcurrency > 4 {
		t.Fatalf("peak %d exceeds slot count 4", p.PeakConcurrency)
	}
	if p.PeakConcurrency < 3 {
		t.Fatalf("peak %d; engine underutilized slots", p.PeakConcurrency)
	}
	if p.EffectiveParallelism < 2 {
		t.Fatalf("effective parallelism = %v", p.EffectiveParallelism)
	}
}
