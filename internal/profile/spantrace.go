package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/span"
)

// WriteSpanTrace renders per-job span timelines as a Chrome/Perfetto
// trace (JSON array of complete "X" slices). Unlike LiveTrace — one
// slice per job from live events — each job here expands into one
// slice per attributed phase, stacked on the job's slot lane, so the
// dispatch/container/stage overheads the paper measures are visible
// gaps-with-names instead of anonymous dead time.
func WriteSpanTrace(w io.Writer, spans []span.Span) error {
	var t0 time.Time
	for _, s := range spans {
		for _, t := range []time.Time{s.Queued, s.Started} {
			if !t.IsZero() && (t0.IsZero() || t.Before(t0)) {
				t0 = t
			}
		}
	}
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	wrote := false
	emit := func(name string, lane int, start time.Time, d time.Duration, args map[string]any) error {
		if d <= 0 || start.IsZero() {
			return nil
		}
		ev := map[string]any{
			"name": name,
			"ph":   "X",
			"ts":   float64(start.Sub(t0)) / float64(time.Microsecond),
			"dur":  d.Seconds() * 1e6,
			"pid":  1,
			"tid":  lane,
			"args": args,
		}
		if wrote {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		wrote = true
		return enc.Encode(ev)
	}
	for _, s := range spans {
		args := map[string]any{"seq": s.Seq, "host": s.Host, "ok": s.OK}
		if s.Incomplete {
			args["incomplete"] = true
		}
		lane := s.Slot
		// Queue wait sits before the slot lane makes sense; render it on
		// the job's eventual lane anyway so each job reads left-to-right.
		if err := emit(fmt.Sprintf("queue-wait #%d", s.Seq), lane, s.Queued, s.QueueWait, args); err != nil {
			return err
		}
		cursor := s.Started
		for _, ph := range []struct {
			name string
			d    time.Duration
		}{
			{span.PhaseDispatch, s.Dispatch},
			{span.PhaseContainerStart, s.ContainerStart},
			{span.PhaseStageIn, s.StageIn},
			{span.PhaseExec, s.Exec},
			{span.PhaseStageOut, s.StageOut},
			{span.PhaseCollect, s.Collect},
		} {
			if err := emit(fmt.Sprintf("%s #%d", ph.name, s.Seq), lane, cursor, ph.d, args); err != nil {
				return err
			}
			if ph.d > 0 && !cursor.IsZero() {
				cursor = cursor.Add(ph.d)
			}
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}
