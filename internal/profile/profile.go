// Package profile extracts an application's parallel profile from an
// execution job log — the paper's closing use-case: run a workload once
// under the launcher, then analyze where the time went, how parallel the
// execution actually was, and what slot count the workload can use.
//
// The input is the GNU-Parallel-format joblog (core.JoblogEntry), which
// carries per-job start times and runtimes — enough to reconstruct the
// concurrency timeline exactly.
package profile

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// quantum is the joblog timestamp resolution in seconds (µs in our
// logs, coarser in GNU Parallel's). Interval arithmetic throughout the
// package treats a gap shorter than one quantum as contiguous: engines
// hand a freed slot to the next job in well under a microsecond, so
// quantized timestamps round-tripped through float64 can otherwise
// reconstruct a phantom sub-quantum overlap that inflates concurrency.
const quantum = 1e-6

// Profile is the reconstructed parallel execution profile.
type Profile struct {
	Jobs     int
	Failed   int
	Makespan time.Duration
	// TotalWork is the sum of job runtimes (serial time equivalent).
	TotalWork time.Duration
	// PeakConcurrency is the maximum number of simultaneously running
	// jobs; EffectiveParallelism is TotalWork/Makespan.
	PeakConcurrency      int
	EffectiveParallelism float64
	// Runtime distribution of individual jobs.
	Runtime metrics.Summary
	// DispatchGap is the distribution of idle gaps between one job's
	// observed start and the previous start (launch pacing).
	MeanDispatchGap time.Duration
	// Utilization is EffectiveParallelism / PeakConcurrency: how fully
	// the achieved slot pool was kept busy.
	Utilization float64
	// Timeline samples concurrency over the run (for plotting).
	Timeline []TimelinePoint
}

// TimelinePoint is one sample of running-job count.
type TimelinePoint struct {
	T       time.Duration // offset from run start
	Running int
}

// Analyze reconstructs the profile from joblog entries. It returns an
// error if the log is empty.
func Analyze(entries []core.JoblogEntry) (*Profile, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("profile: empty joblog")
	}
	type edge struct {
		t     float64
		delta int
	}
	var edges []edge
	var runtimes metrics.Sample
	p := &Profile{Jobs: len(entries)}

	minStart := math.Inf(1)
	maxEnd := math.Inf(-1)
	starts := make([]float64, 0, len(entries))
	for _, e := range entries {
		if e.Exitval != 0 || e.Signal != 0 {
			p.Failed++
		}
		end := e.Start + e.Runtime
		// Joblog timestamps are quantized (µs in our logs, ms in GNU
		// Parallel's) and round-trip through float64, so back-to-back
		// jobs on one slot can reconstruct with a sub-quantum phantom
		// overlap when the engine's handoff gap is shorter than the log
		// quantum. Pull the sweep's end edge back by one quantum
		// (clamped to the start): phantom overlaps vanish, genuine
		// concurrency on any longer timescale is unaffected.
		sweepEnd := end
		if sweepEnd-quantum > e.Start {
			sweepEnd -= quantum
		}
		edges = append(edges, edge{e.Start, +1}, edge{sweepEnd, -1})
		runtimes.Add(e.Runtime)
		p.TotalWork += time.Duration(e.Runtime * float64(time.Second))
		starts = append(starts, e.Start)
		if e.Start < minStart {
			minStart = e.Start
		}
		if end > maxEnd {
			maxEnd = end
		}
	}
	p.Makespan = time.Duration((maxEnd - minStart) * float64(time.Second))
	p.Runtime = runtimes.Summarize()

	// Concurrency timeline via sweep.
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].t != edges[j].t {
			return edges[i].t < edges[j].t
		}
		// Ends before starts at equal time: closed-open intervals.
		return edges[i].delta < edges[j].delta
	})
	running := 0
	for _, e := range edges {
		running += e.delta
		if running > p.PeakConcurrency {
			p.PeakConcurrency = running
		}
		p.Timeline = append(p.Timeline, TimelinePoint{
			T:       time.Duration((e.t - minStart) * float64(time.Second)),
			Running: running,
		})
	}

	if p.Makespan > 0 {
		p.EffectiveParallelism = p.TotalWork.Seconds() / p.Makespan.Seconds()
	}
	if p.PeakConcurrency > 0 {
		p.Utilization = p.EffectiveParallelism / float64(p.PeakConcurrency)
	}

	// Launch pacing: mean gap between consecutive starts.
	sort.Float64s(starts)
	if len(starts) > 1 {
		gap := (starts[len(starts)-1] - starts[0]) / float64(len(starts)-1)
		p.MeanDispatchGap = time.Duration(gap * float64(time.Second))
	}
	return p, nil
}

// RecommendSlots suggests a -j value: enough slots that launch pacing is
// not the bottleneck for the observed task durations (the Fig 3
// utilization-floor logic inverted), capped at the task count.
func (p *Profile) RecommendSlots(dispatchCost time.Duration) int {
	if dispatchCost <= 0 || p.Runtime.Median <= 0 {
		return p.PeakConcurrency
	}
	// A single dispatcher sustains 1/dispatchCost launches/s; each slot
	// frees every median-runtime seconds. Slots beyond
	// median/dispatchCost can't be refilled fast enough.
	max := int(p.Runtime.Median/dispatchCost.Seconds()) + 1
	if max > p.Jobs {
		max = p.Jobs
	}
	if max < 1 {
		max = 1
	}
	return max
}

// Render prints a human-readable report.
func (p *Profile) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "jobs:                  %d (%d failed)\n", p.Jobs, p.Failed)
	fmt.Fprintf(&b, "makespan:              %v\n", p.Makespan.Round(time.Millisecond))
	fmt.Fprintf(&b, "total work:            %v\n", p.TotalWork.Round(time.Millisecond))
	fmt.Fprintf(&b, "peak concurrency:      %d\n", p.PeakConcurrency)
	fmt.Fprintf(&b, "effective parallelism: %.2f\n", p.EffectiveParallelism)
	fmt.Fprintf(&b, "slot utilization:      %.0f%%\n", p.Utilization*100)
	fmt.Fprintf(&b, "job runtime:           med=%.3fs p90=%.3fs max=%.3fs\n",
		p.Runtime.Median, p.Runtime.P90, p.Runtime.Max)
	fmt.Fprintf(&b, "mean launch gap:       %v\n", p.MeanDispatchGap.Round(time.Microsecond))
	fmt.Fprintf(&b, "concurrency sparkline: %s\n", p.Sparkline(60))
	return b.String()
}

// Sparkline renders the concurrency timeline as a width-character strip.
func (p *Profile) Sparkline(width int) string {
	if len(p.Timeline) == 0 || width < 1 || p.Makespan <= 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	buckets := make([]int, width)
	for i := 0; i+1 < len(p.Timeline); i++ {
		// Each timeline segment [T_i, T_i+1) has constant concurrency.
		lo := int(float64(p.Timeline[i].T) / float64(p.Makespan) * float64(width))
		hi := int(float64(p.Timeline[i+1].T) / float64(p.Makespan) * float64(width))
		if lo >= width {
			lo = width - 1
		}
		if hi > width {
			hi = width
		}
		for j := lo; j < hi || j == lo; j++ {
			if j >= width {
				break
			}
			if p.Timeline[i].Running > buckets[j] {
				buckets[j] = p.Timeline[i].Running
			}
			if j == lo && hi <= lo {
				break
			}
		}
	}
	var b strings.Builder
	for _, v := range buckets {
		idx := 0
		if p.PeakConcurrency > 0 {
			idx = v * (len(levels) - 1) / p.PeakConcurrency
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}
