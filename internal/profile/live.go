package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
)

// LiveTrace writes a Chrome/Perfetto trace incrementally from live
// job-lifecycle events, so a run can be inspected in ui.perfetto.dev
// while it is still executing — unlike ChromeTrace, which needs a
// finished joblog. Lanes are the engine's real slot numbers (the
// joblog path has to reconstruct them; events carry them directly).
//
// Events are appended as they arrive; the Chrome JSON-array format
// tolerates a missing closing bracket, so a trace cut off mid-run (or
// tail -f'd) still loads. Close writes the terminator.
type LiveTrace struct {
	mu     sync.Mutex
	w      io.Writer
	t0     time.Time
	wrote  bool
	closed bool
	err    error
}

// NewLiveTrace streams trace events to w. Feed it from a telemetry bus
// subscription: bus.Subscribe(n) + Consume for each event.
func NewLiveTrace(w io.Writer) *LiveTrace {
	return &LiveTrace{w: w}
}

// Consume appends one lifecycle event to the trace. Only finished and
// killed events produce trace slices; the rest establish the time
// origin. Safe for concurrent use.
func (lt *LiveTrace) Consume(ev core.Event) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if lt.closed || lt.err != nil {
		return
	}
	if lt.t0.IsZero() {
		lt.t0 = ev.Time
	}
	if ev.Type != core.EventFinished && ev.Type != core.EventKilled {
		return
	}
	name := ev.Command
	if name == "" {
		name = fmt.Sprintf("job %d", ev.Seq)
	}
	if len(name) > 80 {
		name = name[:77] + "..."
	}
	end := ev.Time
	start := end.Add(-ev.Duration)
	event := map[string]any{
		"name": name,
		"ph":   "X",
		"ts":   float64(start.Sub(lt.t0)) / float64(time.Microsecond),
		"dur":  ev.Duration.Seconds() * 1e6,
		"pid":  1,
		"tid":  ev.Slot,
		"args": map[string]any{
			"seq": ev.Seq, "exitval": ev.ExitCode, "host": ev.Host,
			"attempts": ev.Attempt, "killed": ev.Type == core.EventKilled,
		},
	}
	data, err := json.Marshal(event)
	if err != nil {
		lt.err = err
		return
	}
	prefix := "[\n"
	if lt.wrote {
		prefix = ",\n"
	}
	if _, err := io.WriteString(lt.w, prefix); err != nil {
		lt.err = err
		return
	}
	if _, err := lt.w.Write(data); err != nil {
		lt.err = err
		return
	}
	lt.wrote = true
}

// Close terminates the JSON array. Consume calls after Close are
// ignored.
func (lt *LiveTrace) Close() error {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if lt.closed {
		return lt.err
	}
	lt.closed = true
	if lt.err != nil {
		return lt.err
	}
	if !lt.wrote {
		_, lt.err = io.WriteString(lt.w, "[]\n")
		return lt.err
	}
	_, lt.err = io.WriteString(lt.w, "\n]\n")
	return lt.err
}
