package profile

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/span"
)

func TestWriteSpanTrace(t *testing.T) {
	t0 := time.Date(2024, 5, 1, 0, 0, 0, 0, time.UTC)
	spans := []span.Span{
		{
			Seq: 1, Slot: 2, OK: true, Host: "n1",
			Queued: t0, Started: t0.Add(time.Millisecond),
			End:       t0.Add(51 * time.Millisecond),
			QueueWait: time.Millisecond,
			Dispatch:  2 * time.Millisecond, ContainerStart: 3 * time.Millisecond,
			Exec: 45 * time.Millisecond, Collect: time.Millisecond,
		},
	}
	var buf bytes.Buffer
	if err := WriteSpanTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace not valid JSON: %v\n%s", err, buf.String())
	}
	names := map[string]bool{}
	for _, ev := range events {
		names[ev["name"].(string)] = true
		if ev["ph"] != "X" {
			t.Errorf("event ph = %v", ev["ph"])
		}
	}
	for _, want := range []string{
		"queue-wait #1", "dispatch #1", "container-start #1", "exec #1", "collect #1",
	} {
		if !names[want] {
			t.Errorf("missing slice %q in %v", want, names)
		}
	}
	// Zero phases (stage-in/out) must not produce slices.
	if names["stage-in #1"] || names["stage-out #1"] {
		t.Error("zero-duration phases emitted")
	}

	// Empty input still yields a valid (empty) JSON array.
	buf.Reset()
	if err := WriteSpanTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var empty []any
	if err := json.Unmarshal(buf.Bytes(), &empty); err != nil || len(empty) != 0 {
		t.Fatalf("empty trace invalid: %v %q", err, buf.String())
	}
}
