package profile

import (
	"container/heap"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
)

// ChromeTrace writes joblog entries as a Chrome/Perfetto trace
// (chrome://tracing JSON array format): one complete ("X") event per
// job, laid out on execution lanes. The joblog does not record slot
// numbers, so lanes are reconstructed by greedy interval assignment —
// each job takes the lowest-numbered lane free at its start, which for
// a slot-limited engine recovers a layout equivalent to the real slots.
func ChromeTrace(w io.Writer, entries []core.JoblogEntry) error {
	if len(entries) == 0 {
		return fmt.Errorf("profile: empty joblog")
	}
	sorted := append([]core.JoblogEntry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	t0 := sorted[0].Start

	lanes := assignLanes(sorted)

	type traceEvent struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"` // microseconds
		Dur  float64        `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args,omitempty"`
	}
	events := make([]traceEvent, 0, len(sorted))
	for i, e := range sorted {
		name := e.Command
		if name == "" {
			name = fmt.Sprintf("job %d", e.Seq)
		}
		if len(name) > 80 {
			name = name[:77] + "..."
		}
		ev := traceEvent{
			Name: name,
			Ph:   "X",
			Ts:   (e.Start - t0) * 1e6,
			Dur:  e.Runtime * 1e6,
			PID:  1,
			TID:  lanes[i] + 1,
			Args: map[string]any{"seq": e.Seq, "exitval": e.Exitval, "host": e.Host},
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// laneHeap orders lanes by the time they free up.
type laneEnd struct {
	lane int
	end  float64
}
type laneHeap []laneEnd

func (h laneHeap) Len() int           { return len(h) }
func (h laneHeap) Less(i, j int) bool { return h[i].end < h[j].end }
func (h laneHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *laneHeap) Push(x any)        { *h = append(*h, x.(laneEnd)) }
func (h *laneHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// assignLanes maps start-sorted entries to execution lanes: reuse the
// earliest-freed lane when it is free by the job's start, else open a
// new lane. The lane count equals Analyze's peak concurrency, which
// requires the same quantum tolerance when deciding whether a lane has
// freed (see the quantum doc in profile.go).
func assignLanes(sorted []core.JoblogEntry) []int {
	lanes := make([]int, len(sorted))
	var busy laneHeap
	next := 0
	// free holds lane ids available for reuse (LIFO keeps low ids hot).
	var free []int
	for i, e := range sorted {
		for len(busy) > 0 && busy[0].end-quantum <= e.Start {
			freed := heap.Pop(&busy).(laneEnd)
			free = append(free, freed.lane)
		}
		// Prefer the lowest-numbered free lane for a stable layout.
		sort.Sort(sort.Reverse(sort.IntSlice(free)))
		var lane int
		if len(free) > 0 {
			lane = free[len(free)-1]
			free = free[:len(free)-1]
		} else {
			lane = next
			next++
		}
		lanes[i] = lane
		heap.Push(&busy, laneEnd{lane: lane, end: e.Start + e.Runtime})
	}
	return lanes
}
