package span

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

var t0 = time.Date(2024, 5, 1, 12, 0, 0, 0, time.UTC)

// feedJob pushes a full queued→started→finished event sequence.
func feedJob(r *Recorder, seq, slot int) {
	r.Consume(core.Event{Type: core.EventQueued, Seq: seq, Time: t0,
		Render: 50 * time.Microsecond})
	r.Consume(core.Event{Type: core.EventStarted, Seq: seq, Slot: slot,
		Attempt: 1, Time: t0.Add(10 * time.Millisecond)})
	end := t0.Add(120 * time.Millisecond)
	r.Consume(core.Event{Type: core.EventFinished, Seq: seq, Slot: slot,
		Attempt: 1, OK: true, Host: "nodeA",
		Time:           end.Add(3 * time.Millisecond), // collector saw it 3ms later
		End:            end,
		Duration:       100 * time.Millisecond,
		DispatchDelay:  2 * time.Millisecond,
		WorkerDispatch: 500 * time.Microsecond,
		ContainerStart: 5 * time.Millisecond,
		StageIn:        7 * time.Millisecond,
		StageOut:       3 * time.Millisecond,
	})
}

func TestRecorderAssemblesSpan(t *testing.T) {
	r := NewRecorder(nil, true)
	feedJob(r, 1, 4)
	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Incomplete {
		t.Error("span marked incomplete")
	}
	if s.Seq != 1 || s.Slot != 4 || !s.OK || s.Host != "nodeA" {
		t.Errorf("identity fields wrong: %+v", s)
	}
	if s.Render != 50*time.Microsecond {
		t.Errorf("Render = %v", s.Render)
	}
	if s.QueueWait != 10*time.Millisecond {
		t.Errorf("QueueWait = %v", s.QueueWait)
	}
	if s.Dispatch != 2*time.Millisecond || s.WorkerDispatch != 500*time.Microsecond {
		t.Errorf("Dispatch = %v WorkerDispatch = %v", s.Dispatch, s.WorkerDispatch)
	}
	// Exec = Duration - container - stages = 100 - 5 - 7 - 3 = 85ms.
	if s.Exec != 85*time.Millisecond {
		t.Errorf("Exec = %v, want 85ms", s.Exec)
	}
	if s.Collect != 3*time.Millisecond {
		t.Errorf("Collect = %v, want 3ms", s.Collect)
	}
	// Overhead excludes WorkerDispatch (sub-segment) and staging.
	want := 50*time.Microsecond + 2*time.Millisecond + 5*time.Millisecond + 3*time.Millisecond
	if s.Overhead() != want {
		t.Errorf("Overhead = %v, want %v", s.Overhead(), want)
	}
}

func TestRecorderCloseFlushesIncomplete(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf, true)
	feedJob(r, 1, 1)
	// Job 2 queued and started but never finished (interrupted run).
	r.Consume(core.Event{Type: core.EventQueued, Seq: 2, Time: t0})
	r.Consume(core.Event{Type: core.EventStarted, Seq: 2, Slot: 2, Attempt: 1,
		Time: t0.Add(time.Millisecond)})
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	spans, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Incomplete || !spans[1].Incomplete {
		t.Errorf("incomplete flags wrong: %v %v", spans[0].Incomplete, spans[1].Incomplete)
	}
	if spans[1].Seq != 2 || spans[1].Slot != 2 {
		t.Errorf("flushed span identity wrong: %+v", spans[1])
	}
	// Consume after Close is ignored.
	feedJob(r, 3, 3)
	if got := len(r.Spans()); got != 2 {
		t.Errorf("Consume after Close changed span count: %d", got)
	}
}

func TestWireRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf, true)
	feedJob(r, 7, 2)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 1 {
		t.Fatalf("got %d spans", len(parsed))
	}
	orig, got := r.Spans()[0], parsed[0]
	if got.Seq != orig.Seq || got.Slot != orig.Slot || got.Host != orig.Host ||
		got.OK != orig.OK || got.Attempt != orig.Attempt {
		t.Errorf("identity mismatch:\n got %+v\nwant %+v", got, orig)
	}
	for _, pair := range []struct {
		name      string
		got, want time.Duration
	}{
		{"Render", got.Render, orig.Render},
		{"QueueWait", got.QueueWait, orig.QueueWait},
		{"Dispatch", got.Dispatch, orig.Dispatch},
		{"WorkerDispatch", got.WorkerDispatch, orig.WorkerDispatch},
		{"ContainerStart", got.ContainerStart, orig.ContainerStart},
		{"StageIn", got.StageIn, orig.StageIn},
		{"Exec", got.Exec, orig.Exec},
		{"StageOut", got.StageOut, orig.StageOut},
		{"Collect", got.Collect, orig.Collect},
	} {
		if diff := pair.got - pair.want; diff < -time.Microsecond || diff > time.Microsecond {
			t.Errorf("%s: got %v want %v", pair.name, pair.got, pair.want)
		}
	}
	if !got.Queued.Equal(orig.Queued) || !got.End.Equal(orig.End) {
		t.Errorf("timestamps mismatch: %v/%v vs %v/%v", got.Queued, got.End, orig.Queued, orig.End)
	}
}

func TestParseToleratesTruncatedTail(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf, false)
	feedJob(r, 1, 1)
	feedJob(r, 2, 1)
	full := buf.String()
	// Chop the last line mid-object, as a SIGKILL mid-write would.
	cut := full[:len(full)-20]
	spans, err := Parse(strings.NewReader(cut))
	if err != nil {
		t.Fatalf("truncated tail should parse: %v", err)
	}
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	// But a corrupt line in the middle is a real error.
	corrupt := "{bogus\n" + full
	if _, err := Parse(strings.NewReader(corrupt)); err == nil {
		t.Error("mid-stream corruption should error")
	}
}

func TestFromJoblog(t *testing.T) {
	entries := []core.JoblogEntry{
		{Seq: 1, Host: ":", Start: 100.5, Runtime: 2.0, Exitval: 0},
		{Seq: 2, Host: "nodeB", Start: 101.0, Runtime: 1.5, Exitval: 3},
	}
	spans := FromJoblog(entries)
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	if !spans[0].OK || spans[1].OK {
		t.Errorf("OK flags wrong")
	}
	if spans[0].Exec != 2*time.Second {
		t.Errorf("Exec = %v", spans[0].Exec)
	}
	if got := spans[1].End.Sub(spans[1].Started); got != 1500*time.Millisecond {
		t.Errorf("End-Started = %v", got)
	}
}

func TestAnalyzeDecomposition(t *testing.T) {
	mk := func(seq, slot int, start time.Time, exec time.Duration) Span {
		disp := 2 * time.Millisecond
		return Span{
			Seq: seq, Slot: slot, Attempt: 1, OK: true,
			Queued: start, Started: start.Add(time.Millisecond),
			End:       start.Add(time.Millisecond + disp + exec),
			QueueWait: time.Millisecond, Dispatch: disp, Exec: exec,
		}
	}
	spans := []Span{
		mk(1, 1, t0, 100*time.Millisecond),
		mk(2, 2, t0, 200*time.Millisecond),
		mk(3, 1, t0.Add(110*time.Millisecond), 100*time.Millisecond),
		{Seq: 4, Incomplete: true, Queued: t0},
	}
	a := Analyze(spans)
	if a.Jobs != 4 || a.Incomplete != 1 || a.Failed != 0 {
		t.Errorf("counts wrong: %+v", a)
	}
	if a.Slots != 2 {
		t.Errorf("Slots = %d", a.Slots)
	}
	if math.Abs(a.ExecTotalS-0.4) > 1e-9 {
		t.Errorf("ExecTotalS = %v", a.ExecTotalS)
	}
	// Overhead per completed job = 2ms dispatch.
	if math.Abs(a.OverheadTotalS-0.006) > 1e-9 {
		t.Errorf("OverheadTotalS = %v", a.OverheadTotalS)
	}
	if math.Abs(a.DispatchRate-500) > 1e-6 {
		t.Errorf("DispatchRate = %v, want 500", a.DispatchRate)
	}
	if math.Abs(a.OverheadPct-0.006/0.406) > 1e-9 {
		t.Errorf("OverheadPct = %v", a.OverheadPct)
	}
	// Critical path ends with span 3 in slot 1: two jobs plus the idle
	// gap between them (span1 ends at +103ms, span3 starts at +111ms).
	cp := a.CriticalPath
	if cp.Slot != 1 || cp.Jobs != 2 {
		t.Errorf("critical path = %+v", cp)
	}
	if math.Abs(cp.IdleS-0.008) > 1e-9 {
		t.Errorf("IdleS = %v, want 0.008", cp.IdleS)
	}
	if len(a.Utilization) == 0 {
		t.Error("no utilization timeline")
	}
	// Phase digests must include dispatch and exec.
	var sawDispatch, sawExec bool
	for _, p := range a.Phases {
		switch p.Phase {
		case PhaseDispatch:
			sawDispatch = p.Count == 3
		case PhaseExec:
			sawExec = p.Count == 3
		}
	}
	if !sawDispatch || !sawExec {
		t.Errorf("phase digests missing: %+v", a.Phases)
	}
}

// TestSimFrontierDispatchRate is the paper-headline acceptance check:
// a single simulated Frontier-profile instance must dispatch at ~470
// procs/s (Fig 3).
func TestSimFrontierDispatchRate(t *testing.T) {
	spans, err := RunSim(SimConfig{Seed: 1, Tasks: 2000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(spans)
	if a.Jobs != 2000 || a.Failed != 0 || a.Incomplete != 0 {
		t.Fatalf("unexpected counts: %+v", a)
	}
	if a.DispatchRate < 470*0.95 || a.DispatchRate > 470*1.05 {
		t.Errorf("DispatchRate = %.1f procs/s, want ~470 (±5%%)", a.DispatchRate)
	}
}

// TestSimShifterOverheadPct reproduces the paper's ~19 % Shifter
// container-startup share of per-task launch overhead.
func TestSimShifterOverheadPct(t *testing.T) {
	spans, err := RunSim(SimConfig{Seed: 2, Tasks: 2000, Runtime: "shifter"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(spans)
	if a.ContainerPct < 0.17 || a.ContainerPct > 0.21 {
		t.Errorf("ContainerPct = %.3f, want ~0.19", a.ContainerPct)
	}
}

// TestSimStagePhases checks staging config flows through to spans.
func TestSimStagePhases(t *testing.T) {
	spans, err := RunSim(SimConfig{
		Seed: 3, Tasks: 50, TaskDur: 10 * time.Millisecond,
		StageIn: 4 * time.Millisecond, StageOut: 2 * time.Millisecond,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range spans[:5] {
		if s.StageIn != 4*time.Millisecond || s.StageOut != 2*time.Millisecond {
			t.Errorf("seq %d stages = %v/%v", s.Seq, s.StageIn, s.StageOut)
		}
		if s.Exec < 9*time.Millisecond || s.Exec > 11*time.Millisecond {
			t.Errorf("seq %d Exec = %v, want ~10ms", s.Seq, s.Exec)
		}
	}
}

// TestSimDeterministic: same seed, same spans (wire-identical).
func TestSimDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if _, err := RunSim(SimConfig{Seed: 7, Tasks: 100}, &a); err != nil {
		t.Fatal(err)
	}
	if _, err := RunSim(SimConfig{Seed: 7, Tasks: 100}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different span streams")
	}
}
