package span

import (
	"sort"
	"time"
)

// PhaseStat is the latency digest for one phase across a run. All
// values are seconds, matching the wire format, so the struct doubles
// as the machine-readable report row.
type PhaseStat struct {
	Phase  string  `json:"phase"`
	Count  int     `json:"count"`
	TotalS float64 `json:"total_s"`
	MeanS  float64 `json:"mean_s"`
	P50S   float64 `json:"p50_s"`
	P90S   float64 `json:"p90_s"`
	P99S   float64 `json:"p99_s"`
	MaxS   float64 `json:"max_s"`
}

// UtilPoint is one bucket of the slot-utilization timeline: Busy is
// the fraction of slot capacity occupied during [OffsetS, OffsetS+WidthS).
type UtilPoint struct {
	OffsetS float64 `json:"offset_s"`
	WidthS  float64 `json:"width_s"`
	Busy    float64 `json:"busy"`
}

// PathSegment is one hop of the critical path: a job's attributed time
// (Kind "exec" or "overhead") or the idle gap before it (Kind "idle").
type PathSegment struct {
	Seq       int     `json:"seq,omitempty"`
	Kind      string  `json:"kind"`
	DurationS float64 `json:"duration_s"`
}

// CriticalPath is the longest slot-serialized chain ending at the last
// job to finish: what the makespan was actually spent on.
type CriticalPath struct {
	Slot      int     `json:"slot"`
	Jobs      int     `json:"jobs"`
	ExecS     float64 `json:"exec_s"`
	OverheadS float64 `json:"overhead_s"`
	IdleS     float64 `json:"idle_s"`
	// Segments is capped (oldest dropped) to keep reports bounded.
	Segments          []PathSegment `json:"segments,omitempty"`
	SegmentsTruncated bool          `json:"segments_truncated,omitempty"`
}

// Analysis is the machine-readable report `gopar report` emits: the
// overhead decomposition, phase digests, utilization timeline and
// critical path for one run.
type Analysis struct {
	Jobs       int `json:"jobs"`
	Failed     int `json:"failed"`
	Killed     int `json:"killed"`
	Incomplete int `json:"incomplete"`
	Retries    int `json:"retries"`
	Slots      int `json:"slots"`
	Hosts      int `json:"hosts"`

	Start     time.Time `json:"start"`
	End       time.Time `json:"end"`
	MakespanS float64   `json:"makespan_s"`

	// Wall-time decomposition: every completed job's time is exec +
	// staging + attributed launcher overhead. OverheadPct is the
	// launcher's share of the total attributed time.
	ExecTotalS     float64 `json:"exec_total_s"`
	StageTotalS    float64 `json:"stage_total_s"`
	OverheadTotalS float64 `json:"overhead_total_s"`
	OverheadPct    float64 `json:"overhead_pct"`

	// OverheadPerJobS is the mean attributed launcher overhead per job
	// (render + dispatch + container start + collect) — the paper's
	// per-task launch cost, the number the WMS comparison is built on.
	OverheadPerJobS float64 `json:"overhead_per_job_s"`

	// DispatchMeanS and DispatchRate are the paper's headline dispatch
	// measurement: the mean slot-to-process-start cost and its inverse,
	// sustainable procs/s per serial dispatch stream (one instance).
	DispatchMeanS float64 `json:"dispatch_mean_s"`
	DispatchRate  float64 `json:"dispatch_rate_per_instance"`

	// ContainerMeanS and ContainerPct measure the container-runtime
	// startup tax: its mean and its share of per-task launch overhead
	// (dispatch + container start) — the paper's ~19 % Shifter figure.
	ContainerMeanS float64 `json:"container_mean_s,omitempty"`
	ContainerPct   float64 `json:"container_pct,omitempty"`

	Phases       []PhaseStat  `json:"phases"`
	Utilization  []UtilPoint  `json:"utilization,omitempty"`
	CriticalPath CriticalPath `json:"critical_path"`
}

const (
	utilBuckets = 60
	maxPathSegs = 200
)

// Analyze decomposes a run's spans. Incomplete spans are counted but
// excluded from phase statistics.
func Analyze(spans []Span) Analysis {
	var a Analysis
	a.Jobs = len(spans)

	phaseVals := map[string][]float64{}
	slots := map[int]bool{}
	hosts := map[string]bool{}
	addPhase := func(name string, d time.Duration) {
		if d > 0 {
			phaseVals[name] = append(phaseVals[name], d.Seconds())
		}
	}

	var complete []Span
	for _, s := range spans {
		if s.Incomplete {
			a.Incomplete++
			continue
		}
		complete = append(complete, s)
		if !s.OK {
			a.Failed++
		}
		if s.Killed {
			a.Killed++
		}
		if s.Attempt > 1 {
			a.Retries += s.Attempt - 1
		}
		if s.Slot != 0 {
			slots[s.Slot] = true
		}
		if s.Host != "" && s.Host != ":" {
			hosts[s.Host] = true
		}
		start := s.Queued
		if start.IsZero() {
			start = s.Started
		}
		if !start.IsZero() && (a.Start.IsZero() || start.Before(a.Start)) {
			a.Start = start
		}
		if s.End.After(a.End) {
			a.End = s.End
		}
		addPhase(PhaseRender, s.Render)
		addPhase(PhaseQueueWait, s.QueueWait)
		addPhase(PhaseDispatch, s.Dispatch)
		addPhase(PhaseWorkerDispatch, s.WorkerDispatch)
		addPhase(PhaseContainerStart, s.ContainerStart)
		addPhase(PhaseStageIn, s.StageIn)
		addPhase(PhaseExec, s.Exec)
		addPhase(PhaseStageOut, s.StageOut)
		addPhase(PhaseCollect, s.Collect)

		a.ExecTotalS += s.Exec.Seconds()
		a.StageTotalS += (s.StageIn + s.StageOut).Seconds()
		a.OverheadTotalS += s.Overhead().Seconds()
	}
	a.Slots = len(slots)
	a.Hosts = len(hosts)
	if !a.Start.IsZero() && a.End.After(a.Start) {
		a.MakespanS = a.End.Sub(a.Start).Seconds()
	}
	if total := a.ExecTotalS + a.StageTotalS + a.OverheadTotalS; total > 0 {
		a.OverheadPct = a.OverheadTotalS / total
	}
	if n := len(complete); n > 0 {
		a.OverheadPerJobS = a.OverheadTotalS / float64(n)
	}

	// Phase digests, in pipeline order.
	for _, name := range []string{
		PhaseRender, PhaseQueueWait, PhaseDispatch, PhaseWorkerDispatch,
		PhaseContainerStart, PhaseStageIn, PhaseExec, PhaseStageOut,
		PhaseCollect,
	} {
		vals := phaseVals[name]
		if len(vals) == 0 {
			continue
		}
		sort.Float64s(vals)
		var total float64
		for _, v := range vals {
			total += v
		}
		a.Phases = append(a.Phases, PhaseStat{
			Phase:  name,
			Count:  len(vals),
			TotalS: total,
			MeanS:  total / float64(len(vals)),
			P50S:   percentile(vals, 0.50),
			P90S:   percentile(vals, 0.90),
			P99S:   percentile(vals, 0.99),
			MaxS:   vals[len(vals)-1],
		})
	}

	// Headline rates: a serial dispatch stream sustains 1/mean(dispatch)
	// process launches per second — the paper's procs/s/instance.
	if disp := phaseVals[PhaseDispatch]; len(disp) > 0 {
		var t float64
		for _, v := range disp {
			t += v
		}
		a.DispatchMeanS = t / float64(len(disp))
		if a.DispatchMeanS > 0 {
			a.DispatchRate = 1 / a.DispatchMeanS
		}
	}
	if cont := phaseVals[PhaseContainerStart]; len(cont) > 0 {
		var t float64
		for _, v := range cont {
			t += v
		}
		a.ContainerMeanS = t / float64(len(cont))
		if sum := a.DispatchMeanS + a.ContainerMeanS; sum > 0 {
			a.ContainerPct = a.ContainerMeanS / sum
		}
	}

	a.Utilization = utilization(complete, a)
	a.CriticalPath = criticalPath(complete)
	return a
}

// percentile returns the nearest-rank percentile of sorted vals.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// utilization buckets slot occupancy (Started..End) over the run.
func utilization(spans []Span, a Analysis) []UtilPoint {
	if a.MakespanS <= 0 || a.Slots == 0 || len(spans) == 0 {
		return nil
	}
	width := a.MakespanS / utilBuckets
	busy := make([]float64, utilBuckets)
	for _, s := range spans {
		if s.Started.IsZero() || !s.End.After(s.Started) {
			continue
		}
		lo := s.Started.Sub(a.Start).Seconds()
		hi := s.End.Sub(a.Start).Seconds()
		for b := 0; b < utilBuckets; b++ {
			bLo, bHi := float64(b)*width, float64(b+1)*width
			ov := minF(hi, bHi) - maxF(lo, bLo)
			if ov > 0 {
				busy[b] += ov
			}
		}
	}
	pts := make([]UtilPoint, utilBuckets)
	capacity := width * float64(a.Slots)
	for b := range pts {
		pts[b] = UtilPoint{OffsetS: float64(b) * width, WidthS: width}
		if capacity > 0 {
			pts[b].Busy = busy[b] / capacity
		}
	}
	return pts
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// criticalPath walks back from the last job to finish along its slot's
// serialized chain of jobs, splitting the makespan tail into exec,
// launcher overhead and idle gaps.
func criticalPath(spans []Span) CriticalPath {
	var cp CriticalPath
	// Group by (host, slot): slot numbers repeat across hosts/instances.
	type key struct {
		host string
		slot int
	}
	bySlot := map[key][]Span{}
	var last *Span
	for i := range spans {
		s := &spans[i]
		if s.Started.IsZero() || s.End.IsZero() {
			continue
		}
		k := key{s.Host, s.Slot}
		bySlot[k] = append(bySlot[k], *s)
		if last == nil || s.End.After(last.End) {
			last = s
		}
	}
	if last == nil {
		return cp
	}
	chain := bySlot[key{last.Host, last.Slot}]
	sort.Slice(chain, func(i, j int) bool { return chain[i].Started.Before(chain[j].Started) })
	cp.Slot = last.Slot

	// Walk the chain backwards from the last job.
	idx := -1
	for i := range chain {
		if chain[i].Seq == last.Seq {
			idx = i
			break
		}
	}
	var segs []PathSegment
	prevStart := time.Time{}
	for i := idx; i >= 0; i-- {
		s := chain[i]
		if !prevStart.IsZero() {
			if gap := prevStart.Sub(s.End); gap > 0 {
				cp.IdleS += gap.Seconds()
				segs = append(segs, PathSegment{Kind: "idle", DurationS: gap.Seconds()})
			}
		}
		exec := (s.Exec + s.StageIn + s.StageOut).Seconds()
		over := s.Overhead().Seconds()
		cp.Jobs++
		cp.ExecS += exec
		cp.OverheadS += over
		segs = append(segs,
			PathSegment{Seq: s.Seq, Kind: "exec", DurationS: exec},
			PathSegment{Seq: s.Seq, Kind: "overhead", DurationS: over})
		prevStart = s.Started
	}
	// segs were built newest-first; reverse into run order.
	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}
	if len(segs) > maxPathSegs {
		segs = segs[len(segs)-maxPathSegs:]
		cp.SegmentsTruncated = true
	}
	cp.Segments = segs
	return cp
}
