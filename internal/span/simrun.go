package span

import (
	"fmt"
	"io"
	"time"

	"repro/internal/cluster"
	"repro/internal/container"
	"repro/internal/sim"
)

// SimConfig describes a simulated workload for RunSim. The defaults
// (one Frontier-profile instance, null tasks) reproduce the paper's
// single-instance dispatch measurement.
type SimConfig struct {
	// Profile is the node profile: "frontier" (default),
	// "perlmutter-cpu" or "dtn".
	Profile string
	// Seed seeds the virtual-time RNG (deterministic reports).
	Seed uint64
	// Instances is how many parallel instances share the node (>=1).
	Instances int
	// Jobs is the slot count per instance (default 16).
	Jobs int
	// Tasks is the task count per instance (default 1000).
	Tasks int
	// TaskDur is the payload duration (±10 % jitter); 0 = null tasks.
	TaskDur time.Duration
	// Runtime selects a container runtime: "", "shifter", "podman-hpc".
	Runtime string
	// StageIn and StageOut add data-staging phases around each payload.
	StageIn, StageOut time.Duration
}

func (c *SimConfig) defaults() {
	if c.Profile == "" {
		c.Profile = "frontier"
	}
	if c.Instances <= 0 {
		c.Instances = 1
	}
	if c.Jobs <= 0 {
		c.Jobs = 16
	}
	if c.Tasks <= 0 {
		c.Tasks = 1000
	}
}

// RunSim executes the configured workload on a simulated node and
// returns the spans of every task. When w is non-nil the spans are
// also streamed to it in the wire format, exactly as a live run's
// --spans file would be.
func RunSim(cfg SimConfig, w io.Writer) ([]Span, error) {
	cfg.defaults()

	var prof cluster.Profile
	switch cfg.Profile {
	case "frontier":
		prof = cluster.Frontier()
	case "perlmutter-cpu":
		prof = cluster.PerlmutterCPU()
	case "dtn":
		prof = cluster.DTN()
	default:
		return nil, fmt.Errorf("span: unknown profile %q", cfg.Profile)
	}

	e := sim.NewEngine(cfg.Seed)
	c := cluster.New(e, prof, 1)
	node := c.Nodes[0]

	var rt *container.Runtime
	switch cfg.Runtime {
	case "":
	case "shifter":
		rt = container.Shifter(e)
	case "podman-hpc":
		rt = container.PodmanHPC(e)
	default:
		return nil, fmt.Errorf("span: unknown runtime %q", cfg.Runtime)
	}

	rec := NewRecorder(w, true)
	taskRNG := e.RNG().Split("span/tasks")

	wg := sim.NewCounter(e, cfg.Instances)
	for i := 0; i < cfg.Instances; i++ {
		base := i * cfg.Tasks
		tasks := make([]cluster.Task, cfg.Tasks)
		for j := range tasks {
			t := cluster.Task{
				// Seq must be globally unique: the recorder joins events
				// across instances by sequence number.
				Seq:     base + j + 1,
				StageIn: cfg.StageIn, StageOut: cfg.StageOut,
			}
			if cfg.TaskDur > 0 {
				d := taskRNG.Jitter(cfg.TaskDur, 0.10)
				t.Payload = func(p *sim.Proc, _ cluster.TaskContext) error {
					p.Sleep(d)
					return nil
				}
			}
			tasks[j] = t
		}
		e.Spawn(fmt.Sprintf("inst%d", i), func(p *sim.Proc) {
			node.RunParallel(p, cluster.InstanceConfig{
				Jobs: cfg.Jobs, Runtime: rt, OnEvent: rec.Consume,
			}, tasks)
			wg.Done()
		})
	}
	e.Run()
	if err := rec.Close(); err != nil {
		return nil, err
	}
	return rec.Spans(), nil
}
