package span

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
)

// wireSpan is the JSONL representation of a Span. Timestamps are
// RFC3339Nano; durations are seconds (float), matching the --events
// stream's dur_s/dispatch_s convention. Zero phases are omitted so a
// local no-container run stays compact.
type wireSpan struct {
	Seq        int     `json:"seq"`
	Slot       int     `json:"slot,omitempty"`
	Attempt    int     `json:"attempt,omitempty"`
	Host       string  `json:"host,omitempty"`
	OK         bool    `json:"ok"`
	Exit       int     `json:"exit,omitempty"`
	Killed     bool    `json:"killed,omitempty"`
	Incomplete bool    `json:"incomplete,omitempty"`
	Queued     string  `json:"queued,omitempty"`
	Started    string  `json:"started,omitempty"`
	End        string  `json:"end,omitempty"`
	Render     float64 `json:"render_s,omitempty"`
	QueueWait  float64 `json:"queue_wait_s,omitempty"`
	Dispatch   float64 `json:"dispatch_s,omitempty"`
	WorkerDisp float64 `json:"worker_dispatch_s,omitempty"`
	Container  float64 `json:"container_s,omitempty"`
	StageIn    float64 `json:"stagein_s,omitempty"`
	Exec       float64 `json:"exec_s,omitempty"`
	StageOut   float64 `json:"stageout_s,omitempty"`
	Collect    float64 `json:"collect_s,omitempty"`
}

func fmtTime(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.Format(time.RFC3339Nano)
}

func parseTime(s string) time.Time {
	if s == "" {
		return time.Time{}
	}
	t, err := time.Parse(time.RFC3339Nano, s)
	if err != nil {
		return time.Time{}
	}
	return t
}

func secs(d time.Duration) float64 { return d.Seconds() }
func dur(s float64) time.Duration  { return time.Duration(s * float64(time.Second)) }

func wireFromSpan(s Span) wireSpan {
	return wireSpan{
		Seq: s.Seq, Slot: s.Slot, Attempt: s.Attempt, Host: s.Host,
		OK: s.OK, Exit: s.Exit, Killed: s.Killed, Incomplete: s.Incomplete,
		Queued: fmtTime(s.Queued), Started: fmtTime(s.Started), End: fmtTime(s.End),
		Render: secs(s.Render), QueueWait: secs(s.QueueWait),
		Dispatch: secs(s.Dispatch), WorkerDisp: secs(s.WorkerDispatch),
		Container: secs(s.ContainerStart), StageIn: secs(s.StageIn),
		Exec: secs(s.Exec), StageOut: secs(s.StageOut), Collect: secs(s.Collect),
	}
}

func (w wireSpan) span() Span {
	return Span{
		Seq: w.Seq, Slot: w.Slot, Attempt: w.Attempt, Host: w.Host,
		OK: w.OK, Exit: w.Exit, Killed: w.Killed, Incomplete: w.Incomplete,
		Queued: parseTime(w.Queued), Started: parseTime(w.Started), End: parseTime(w.End),
		Render: dur(w.Render), QueueWait: dur(w.QueueWait),
		Dispatch: dur(w.Dispatch), WorkerDispatch: dur(w.WorkerDisp),
		ContainerStart: dur(w.Container), StageIn: dur(w.StageIn),
		Exec: dur(w.Exec), StageOut: dur(w.StageOut), Collect: dur(w.Collect),
	}
}

// Parse reads a span JSONL stream. A malformed final line (a run killed
// mid-write) is tolerated; a malformed line elsewhere is an error.
func Parse(r io.Reader) ([]Span, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var spans []Span
	var pendingErr error
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		if pendingErr != nil {
			// The bad line was not the last one: real corruption.
			return nil, pendingErr
		}
		var w wireSpan
		if err := json.Unmarshal(b, &w); err != nil {
			pendingErr = fmt.Errorf("span line %d: %w", line, err)
			continue
		}
		spans = append(spans, w.span())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return spans, nil
}

// FromJoblog converts joblog entries into coarse spans: exec time and
// host survive, but phase attribution (dispatch, container, staging) is
// lost — analysis degrades to utilization and exec statistics. It is
// the fallback when a run predates --spans.
func FromJoblog(entries []core.JoblogEntry) []Span {
	spans := make([]Span, 0, len(entries))
	for _, e := range entries {
		start := time.Unix(0, int64(e.Start*float64(time.Second)))
		exec := time.Duration(e.Runtime * float64(time.Second))
		spans = append(spans, Span{
			Seq:     e.Seq,
			Host:    e.Host,
			OK:      e.Exitval == 0 && e.Signal == 0,
			Exit:    e.Exitval,
			Attempt: 1,
			Queued:  start,
			Started: start,
			End:     start.Add(exec),
			Exec:    exec,
		})
	}
	return spans
}
