// Package span records and analyzes per-job phase timelines — the
// overhead-attribution layer the paper's argument rests on. Where
// internal/telemetry answers "how is the run doing right now", span
// answers "where did every second of this run go": how much of each
// job's wall time was template rendering, queue wait, dispatch,
// container startup, data staging, execution, and result collection.
//
// The pipeline has three stages:
//
//   - Recorder consumes the same core.Event stream the telemetry bus
//     carries (real engines, simulated cluster instances and remote
//     workers all emit it) and assembles one Span per job, streaming
//     completed spans as JSON lines. Attach it as a bus subscription
//     consumer — never a synchronous tap — so span assembly stays off
//     the dispatch hot path.
//
//   - The wire format (one JSON object per line, written next to the
//     --events stream) survives interrupted runs: the Recorder flushes
//     in-flight spans on Close, and Parse tolerates a truncated final
//     line.
//
//   - Analyze decomposes a set of spans into the paper's measurements:
//     per-phase totals and latency percentiles, total wall time split
//     into exec vs attributed launcher overhead, slot utilization over
//     time, the critical path through the run, and the headline rates
//     (dispatch procs/s per instance, container startup tax, WMS
//     overhead comparison).
package span

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
)

// Phase names, in the order they occur in a job's life. These are the
// stable keys used in the wire format and report output.
const (
	PhaseRender         = "render"
	PhaseQueueWait      = "queue-wait"
	PhaseDispatch       = "dispatch"
	PhaseWorkerDispatch = "worker-dispatch"
	PhaseContainerStart = "container-start"
	PhaseStageIn        = "stage-in"
	PhaseExec           = "exec"
	PhaseStageOut       = "stage-out"
	PhaseCollect        = "collect"
)

// Span is one job's phase timeline. Timestamps are wall clock (virtual
// time mapped onto the Unix epoch for simulated runs); durations are
// the attributed phase costs. A phase an emitter could not attribute is
// zero.
type Span struct {
	// Seq is the job's 1-based input sequence number (joins to the
	// joblog and event stream).
	Seq int
	// Slot is the execution slot the job ran in.
	Slot int
	// Attempt is the total attempts the job took (>1 after retries).
	Attempt int
	// Host is where the job ran ("" / ":" = local).
	Host string
	// OK, Exit and Killed mirror the job's terminal event.
	OK     bool
	Exit   int
	Killed bool
	// Incomplete marks a span flushed before its terminal event
	// arrived (interrupted run); only Queued/Started and the phases
	// known at flush time are meaningful.
	Incomplete bool

	// Queued is when the rendered job entered the dispatch queue,
	// Started when it acquired a slot, End when the final attempt's
	// process ended.
	Queued, Started, End time.Time

	// Render is template-render cost; QueueWait the slot wait
	// (Started - Queued); Dispatch the slot-acquisition-to-process-
	// start overhead; WorkerDispatch the worker-side sub-segment of
	// Dispatch for remote jobs; ContainerStart the container runtime
	// startup; StageIn/StageOut data staging; Exec the payload
	// runtime; Collect the process-end-to-collector latency.
	Render, QueueWait, Dispatch, WorkerDispatch time.Duration
	ContainerStart, StageIn, Exec, StageOut     time.Duration
	Collect                                     time.Duration
}

// ExecStart returns when the final attempt began (dispatch complete),
// derived from End minus the attempt's in-slot phases.
func (s Span) ExecStart() time.Time {
	if s.End.IsZero() {
		return time.Time{}
	}
	return s.End.Add(-(s.ContainerStart + s.StageIn + s.Exec + s.StageOut))
}

// Overhead returns the launcher-attributed overhead of this job: the
// cost the run paid beyond the payload and its data staging.
// WorkerDispatch is excluded — it is a sub-segment of Dispatch, not an
// additional cost.
func (s Span) Overhead() time.Duration {
	return s.Render + s.Dispatch + s.ContainerStart + s.Collect
}

// Recorder assembles Spans from job-lifecycle events and streams
// completed spans as JSON lines. It is safe for concurrent use; feed
// it from a telemetry bus subscription (async, lossy) rather than a
// synchronous tap, so a slow disk cannot stall dispatch.
type Recorder struct {
	mu      sync.Mutex
	enc     *json.Encoder
	keep    bool
	pending map[int]*Span
	spans   []Span
	err     error
	closed  bool
}

// NewRecorder streams completed spans to w (nil = no stream). When
// keep is true, completed spans are also retained in memory for
// Spans() — off for million-task runs, on for in-process analysis.
func NewRecorder(w io.Writer, keep bool) *Recorder {
	r := &Recorder{keep: keep, pending: map[int]*Span{}}
	if w != nil {
		r.enc = json.NewEncoder(w)
	}
	return r
}

// Consume folds one lifecycle event into the recorder. The signature
// matches telemetry.Pump consumers.
func (r *Recorder) Consume(ev core.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	switch ev.Type {
	case core.EventQueued:
		r.pending[ev.Seq] = &Span{
			Seq: ev.Seq, Queued: ev.Time, Render: ev.Render, Incomplete: true,
		}
	case core.EventStarted:
		s := r.ensure(ev.Seq)
		s.Started = ev.Time
		s.Slot = ev.Slot
		if s.Attempt < ev.Attempt {
			s.Attempt = ev.Attempt
		}
		if !s.Queued.IsZero() && ev.Time.After(s.Queued) {
			s.QueueWait = ev.Time.Sub(s.Queued)
		}
	case core.EventRetried:
		s := r.ensure(ev.Seq)
		if s.Attempt < ev.Attempt {
			s.Attempt = ev.Attempt
		}
	case core.EventFinished, core.EventKilled:
		s := r.ensure(ev.Seq)
		s.Incomplete = false
		s.Killed = ev.Type == core.EventKilled
		s.OK = ev.OK
		s.Exit = ev.ExitCode
		s.Host = ev.Host
		if s.Attempt < ev.Attempt {
			s.Attempt = ev.Attempt
		}
		if s.Slot == 0 {
			s.Slot = ev.Slot
		}
		s.End = ev.End
		if s.End.IsZero() {
			s.End = ev.Time
		}
		s.Dispatch = ev.DispatchDelay
		s.WorkerDispatch = ev.WorkerDispatch
		s.ContainerStart = ev.ContainerStart
		s.StageIn = ev.StageIn
		s.StageOut = ev.StageOut
		// Duration covers the whole in-slot attempt (container + stage
		// + payload for simulated runs); Exec is what remains after the
		// attributed phases.
		if exec := ev.Duration - ev.ContainerStart - ev.StageIn - ev.StageOut; exec > 0 {
			s.Exec = exec
		}
		if d := ev.Time.Sub(s.End); d > 0 {
			s.Collect = d
		}
		delete(r.pending, ev.Seq)
		r.emit(*s)
	}
}

func (r *Recorder) ensure(seq int) *Span {
	s := r.pending[seq]
	if s == nil {
		s = &Span{Seq: seq, Incomplete: true}
		r.pending[seq] = s
	}
	return s
}

// emit writes one finished span; errors are sticky.
func (r *Recorder) emit(s Span) {
	if r.keep {
		r.spans = append(r.spans, s)
	}
	if r.enc != nil && r.err == nil {
		r.err = r.enc.Encode(wireFromSpan(s))
	}
}

// Close flushes spans still in flight (queued or started but never
// finished — an interrupted run) as Incomplete records, so a killed
// run's span file remains analyzable. Further Consume calls are
// ignored.
func (r *Recorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return r.err
	}
	r.closed = true
	seqs := make([]int, 0, len(r.pending))
	for seq := range r.pending {
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	for _, seq := range seqs {
		r.emit(*r.pending[seq])
	}
	r.pending = nil
	return r.err
}

// Err returns the first stream-write error, if any.
func (r *Recorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Spans returns the retained spans (NewRecorder keep=true), in
// completion order with any Close-flushed incomplete spans last.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}
