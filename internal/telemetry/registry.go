package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric label pair.
type Label struct{ Key, Value string }

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing metric. All methods are
// lock-free and safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to preserve counter semantics).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram (Prometheus
// semantics: bucket counts are cumulative, le-labeled upper bounds).
// Observations are atomic; no locks on the hot path.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last = +Inf
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
	count  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, new) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DefBuckets is the default latency bucket layout (seconds), tuned for
// dispatch latencies from tens of microseconds to seconds.
var DefBuckets = []float64{
	.00005, .0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5,
}

// series is one label-set instance of a metric family.
type series struct {
	labels string // preformatted `k="v",k2="v2"` or ""
	write  func(w io.Writer, name, labels string)
	// owner is the typed metric behind this series, returned on
	// duplicate registration of the same name+labels.
	owner any
}

// family groups series sharing a metric name.
type family struct {
	name, help, typ string
	series          []*series
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Metric registration takes a lock; metric updates
// (Counter.Inc etc.) never do.
type Registry struct {
	mu       sync.Mutex
	families []*family // exposition order = registration order
	byName   map[string]*family
	extra    []func(io.Writer)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	esc := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	for i, l := range labels {
		parts[i] = fmt.Sprintf(`%s="%s"`, l.Key, esc.Replace(l.Value))
	}
	return strings.Join(parts, ",")
}

// register adds a series, or returns the existing owner when the same
// name+labels was registered before (idempotent registration).
func (r *Registry) register(name, help, typ, labels string, owner any, write func(io.Writer, string, string)) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	for _, s := range f.series {
		if s.labels == labels && s.owner != nil {
			return s.owner
		}
	}
	f.series = append(f.series, &series{labels: labels, write: write, owner: owner})
	return owner
}

// Counter registers (or returns the existing) counter name{labels}.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	return r.register(name, help, "counter", formatLabels(labels), c,
		func(w io.Writer, n, l string) { writeSample(w, n, l, float64(c.Value())) }).(*Counter)
}

// Gauge registers (or returns the existing) gauge name{labels}.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	return r.register(name, help, "gauge", formatLabels(labels), g,
		func(w io.Writer, n, l string) { writeSample(w, n, l, float64(g.Value())) }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, "gauge", formatLabels(labels), nil,
		func(w io.Writer, n, l string) { writeSample(w, n, l, fn()) })
}

// CounterFunc registers a counter whose value is read at scrape time —
// for monotone counts a component already maintains (Bus.Dropped,
// wal.Stats().Appended) that would be wasteful to mirror into a
// second atomic.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, "counter", formatLabels(labels), nil,
		func(w io.Writer, n, l string) { writeSample(w, n, l, fn()) })
}

// Histogram registers a histogram with the given bucket upper bounds
// (ascending; nil selects DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	h := &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	return r.register(name, help, "histogram", formatLabels(labels), h, func(w io.Writer, n, l string) {
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			writeSample(w, n+"_bucket", joinLabels(l, fmt.Sprintf(`le="%v"`, b)), float64(cum))
		}
		cum += h.counts[len(h.bounds)].Load()
		writeSample(w, n+"_bucket", joinLabels(l, `le="+Inf"`), float64(cum))
		writeSample(w, n+"_sum", l, h.Sum())
		writeSample(w, n+"_count", l, float64(h.Count()))
	}).(*Histogram)
}

// RegisterText appends a raw exposition block writer, for dynamic
// families whose series set is not known at registration time (e.g.
// per-worker pool metrics). fn must emit well-formed exposition text
// including its own # HELP/# TYPE lines.
func (r *Registry) RegisterText(fn func(io.Writer)) {
	r.mu.Lock()
	r.extra = append(r.extra, fn)
	r.mu.Unlock()
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func writeSample(w io.Writer, name, labels string, v float64) {
	if labels == "" {
		fmt.Fprintf(w, "%s %v\n", name, v)
		return
	}
	fmt.Fprintf(w, "%s{%s} %v\n", name, labels, v)
}

// WriteText renders every registered metric in the Prometheus text
// exposition format (content type text/plain; version=0.0.4).
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	extra := append([]func(io.Writer){}, r.extra...)
	r.mu.Unlock()
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			s.write(w, f.name, s.labels)
		}
	}
	for _, fn := range extra {
		fn(w)
	}
}
