package telemetry

import (
	"runtime"
	"runtime/debug"
	"time"
)

// Version identifies the build in <program>_build_info. Overridable at
// link time (-ldflags "-X repro/internal/telemetry.Version=v1.2.3");
// otherwise the module version embedded by `go install`, else "dev".
var Version = ""

// resolveVersion picks the best available version string.
func resolveVersion() string {
	if Version != "" {
		return Version
	}
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "dev"
}

// RegisterBuildInfo exposes the Prometheus build-info convention — a
// constant-1 gauge whose labels carry the version — plus a run
// start-timestamp gauge, so a scrape can compute process uptime
// (time() - start) and reports can be correlated with scrape windows.
// program is the metric prefix ("gopar", "gopard").
func RegisterBuildInfo(reg *Registry, program string, start time.Time) {
	reg.GaugeFunc(program+"_build_info",
		"Build metadata; constant 1, labels carry the info.",
		func() float64 { return 1 },
		L("version", resolveVersion()), L("goversion", runtime.Version()))
	reg.GaugeFunc(program+"_start_time_seconds",
		"Unix time the run started, for uptime and report correlation.",
		func() float64 { return float64(start.UnixNano()) / 1e9 })
}
