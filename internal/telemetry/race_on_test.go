//go:build race

package telemetry

// raceEnabled lets timing-sensitive tests skip hard bounds when the
// race detector's instrumentation (atomics, channel ops) dominates the
// very overhead being measured.
const raceEnabled = true
