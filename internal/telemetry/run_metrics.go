package telemetry

import (
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Standard metric names exposed for an engine run. Documented in
// docs/OBSERVABILITY.md; treat them as a stable scrape contract.
const (
	MetricJobsQueued      = "gopar_jobs_queued_total"
	MetricJobsStarted     = "gopar_jobs_started_total"
	MetricJobsRetried     = "gopar_jobs_retried_total"
	MetricJobsFinished    = "gopar_jobs_finished_total"
	MetricSlotsTotal      = "gopar_slots_total"
	MetricSlotsBusy       = "gopar_slots_busy"
	MetricQueueDepth      = "gopar_queue_depth"
	MetricDispatchLatency = "gopar_dispatch_latency_seconds"
	MetricThroughput      = "gopar_throughput_procs_per_second"
	MetricElapsed         = "gopar_run_elapsed_seconds"
)

// RunMetrics maintains the standard engine-run metrics from lifecycle
// events. Attach it to a Bus as a synchronous tap (bus.Tap(m.Observe)):
// every update is a handful of atomic operations, cheap enough for the
// dispatch hot path.
//
// Outcome accounting matches the joblog exactly: every job that ran
// gets one gopar_jobs_finished_total increment, labeled ok, fail or
// killed — so scrape totals and joblog line counts agree at end of run.
type RunMetrics struct {
	queued, started, retried  *Counter
	finOK, finFail, finKilled *Counter
	slotsBusy                 *Gauge
	dispatch                  *Histogram
	startNano                 atomic.Int64 // first-event wall clock, 0 = none yet
}

// NewRunMetrics registers the standard run metrics on reg. slots is the
// configured slot count (Spec.Jobs / pool capacity); pass 0 if unknown.
func NewRunMetrics(reg *Registry, slots int) *RunMetrics {
	m := &RunMetrics{}
	m.queued = reg.Counter(MetricJobsQueued, "Jobs rendered and entered into the dispatch queue.")
	m.started = reg.Counter(MetricJobsStarted, "Jobs that acquired a slot and began dispatch.")
	m.retried = reg.Counter(MetricJobsRetried, "Retry attempts beyond each job's first.")
	m.finOK = reg.Counter(MetricJobsFinished, "Jobs completed, by outcome.", L("outcome", "ok"))
	m.finFail = reg.Counter(MetricJobsFinished, "Jobs completed, by outcome.", L("outcome", "fail"))
	m.finKilled = reg.Counter(MetricJobsFinished, "Jobs completed, by outcome.", L("outcome", "killed"))
	reg.Gauge(MetricSlotsTotal, "Configured parallel slot count.").Set(int64(slots))
	m.slotsBusy = reg.Gauge(MetricSlotsBusy, "Slots currently running a job.")
	reg.GaugeFunc(MetricQueueDepth, "Jobs queued but not yet dispatched.", func() float64 {
		return float64(m.queued.Value() - m.started.Value())
	})
	m.dispatch = reg.Histogram(MetricDispatchLatency,
		"Per-job dispatch overhead: slot acquisition to process start.", nil)
	reg.GaugeFunc(MetricThroughput, "Jobs started per second of run time so far.", func() float64 {
		if e := m.elapsed(); e > 0 {
			return float64(m.started.Value()) / e.Seconds()
		}
		return 0
	})
	reg.GaugeFunc(MetricElapsed, "Seconds since the run's first lifecycle event.", func() float64 {
		return m.elapsed().Seconds()
	})
	return m
}

func (m *RunMetrics) elapsed() time.Duration {
	t0 := m.startNano.Load()
	if t0 == 0 {
		return 0
	}
	return time.Duration(time.Now().UnixNano() - t0)
}

// Observe updates the metrics from one lifecycle event. Safe for
// concurrent use; atomic operations only.
func (m *RunMetrics) Observe(ev core.Event) {
	if m.startNano.Load() == 0 {
		m.startNano.CompareAndSwap(0, ev.Time.UnixNano())
	}
	switch ev.Type {
	case core.EventQueued:
		m.queued.Inc()
	case core.EventStarted:
		m.started.Inc()
		m.slotsBusy.Add(1)
	case core.EventRetried:
		m.retried.Inc()
	case core.EventFinished, core.EventKilled:
		m.slotsBusy.Add(-1)
		switch {
		case ev.Type == core.EventKilled:
			m.finKilled.Inc()
		case ev.OK:
			m.finOK.Inc()
		default:
			m.finFail.Inc()
		}
		if ev.DispatchDelay > 0 {
			m.dispatch.ObserveDuration(ev.DispatchDelay)
		}
	}
}

// Finished returns the per-outcome completion totals (ok, fail,
// killed) — the numbers that must match the joblog accounting.
func (m *RunMetrics) Finished() (ok, fail, killed int64) {
	return m.finOK.Value(), m.finFail.Value(), m.finKilled.Value()
}

// Snapshot is a compact point-in-time summary of one worker's
// execution counters. internal/dist piggybacks it on job responses so
// the coordinator can expose per-node series without extra round
// trips; gopard also serves it from its own /metrics endpoint.
type Snapshot struct {
	// Worker is the reporting worker's name.
	Worker string `json:"worker,omitempty"`
	// Slots is the worker's advertised capacity.
	Slots int `json:"slots,omitempty"`
	// Busy is how many jobs the worker is executing right now.
	Busy int `json:"busy"`
	// Started, OK and Failed count jobs over the worker's lifetime.
	Started int64 `json:"started"`
	OK      int64 `json:"ok"`
	Failed  int64 `json:"failed"`
	// UnixNano is when the snapshot was taken.
	UnixNano int64 `json:"ts,omitempty"`
}
