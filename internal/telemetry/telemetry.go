// Package telemetry is the runtime observability subsystem for the
// launcher stack: live job-lifecycle events while a run is in flight,
// instead of the after-the-fact joblog analysis internal/profile does.
//
// The design keeps the paper's constraint — near-zero orchestration
// overhead — front and center:
//
//   - Bus is a non-blocking fan-out the engine publishes core.Event
//     values to (Spec.OnEvent = bus.Publish). Synchronous taps are
//     atomic-counter updates only; asynchronous subscribers receive
//     events through a bounded buffer and lose events (counted, never
//     blocking) if they fall behind. A slow scraper or a stalled disk
//     can therefore never slow dispatch.
//
//   - Registry holds counters, gauges and histograms and writes the
//     Prometheus text exposition format; Serve exposes it over HTTP
//     (`gopar --metrics-addr`, `gopard -metrics-addr`).
//
//   - RunMetrics is the standard engine instrumentation: jobs by
//     state, slot occupancy, queue depth, dispatch latency and
//     throughput (procs/s — the paper's headline metric).
//
//   - Snapshot is the compact worker-side summary internal/dist
//     piggybacks on its protocol so a coordinator exposes per-node and
//     fleet-wide series from one endpoint.
//
// The same core.Event interface is fed by real engines, remote workers
// and the simulated cluster, so live dashboards work identically for
// real and simulated runs.
package telemetry

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Subscription is one asynchronous consumer of a Bus. Receive events
// from C; the channel is closed by Bus.Close after the final publish.
type Subscription struct {
	// C delivers events in publish order. Bounded: when the consumer
	// lags more than the buffer, newest events are dropped (and
	// counted) rather than stalling publishers.
	C <-chan core.Event

	c       chan core.Event
	dropped atomic.Int64
}

// Dropped reports how many events this subscriber lost to a full
// buffer.
func (s *Subscription) Dropped() int64 { return s.dropped.Load() }

// Bus fans job-lifecycle events out to taps (synchronous, hot-path
// cheap) and subscriptions (asynchronous, bounded, lossy). Publish
// never blocks, whatever consumers do.
type Bus struct {
	mu     sync.RWMutex
	taps   []func(core.Event)
	subs   []*Subscription
	closed bool

	published atomic.Int64
	dropped   atomic.Int64
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// Tap registers fn to run synchronously inside every Publish. It must
// be concurrency-safe and restricted to cheap work (atomic counter
// updates); anything slower belongs in a Subscription.
func (b *Bus) Tap(fn func(core.Event)) {
	b.mu.Lock()
	b.taps = append(b.taps, fn)
	b.mu.Unlock()
}

// Subscribe registers an asynchronous consumer with the given buffer
// capacity (<=0 selects 4096). Consume from the returned
// Subscription's C until it is closed.
func (b *Bus) Subscribe(buf int) *Subscription {
	if buf <= 0 {
		buf = 4096
	}
	s := &Subscription{c: make(chan core.Event, buf)}
	s.C = s.c
	b.mu.Lock()
	if b.closed {
		close(s.c)
	} else {
		b.subs = append(b.subs, s)
	}
	b.mu.Unlock()
	return s
}

// Publish delivers one event: taps run inline, subscribers get a
// non-blocking send (dropped and counted when their buffer is full).
// The signature matches core.Spec.OnEvent. Publishing after Close is a
// counted drop.
func (b *Bus) Publish(ev core.Event) {
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		b.dropped.Add(1)
		return
	}
	for _, tap := range b.taps {
		tap(ev)
	}
	for _, s := range b.subs {
		select {
		case s.c <- ev:
		default:
			s.dropped.Add(1)
			b.dropped.Add(1)
		}
	}
	b.mu.RUnlock()
	b.published.Add(1)
}

// Close marks the bus finished and closes every subscription channel.
// Call after the engine run returns: every already-published event is
// still buffered for consumers to drain.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for _, s := range b.subs {
		close(s.c)
	}
}

// Published returns the number of events accepted by Publish.
func (b *Bus) Published() int64 { return b.published.Load() }

// Dropped returns the total events lost across all subscribers.
func (b *Bus) Dropped() int64 { return b.dropped.Load() }
