// Package telemetry is the runtime observability subsystem for the
// launcher stack: live job-lifecycle events while a run is in flight,
// instead of the after-the-fact joblog analysis internal/profile does.
//
// The design keeps the paper's constraint — near-zero orchestration
// overhead — front and center:
//
//   - Bus is a non-blocking fan-out the engine publishes core.Event
//     values to (Spec.OnEvent = bus.Publish). Synchronous taps are
//     atomic-counter updates only; asynchronous subscribers receive
//     events through a bounded buffer and lose events (counted, never
//     blocking) if they fall behind. A slow scraper or a stalled disk
//     can therefore never slow dispatch.
//
//   - Registry holds counters, gauges and histograms and writes the
//     Prometheus text exposition format; Serve exposes it over HTTP
//     (`gopar --metrics-addr`, `gopard -metrics-addr`).
//
//   - RunMetrics is the standard engine instrumentation: jobs by
//     state, slot occupancy, queue depth, dispatch latency and
//     throughput (procs/s — the paper's headline metric).
//
//   - Snapshot is the compact worker-side summary internal/dist
//     piggybacks on its protocol so a coordinator exposes per-node and
//     fleet-wide series from one endpoint.
//
// The same core.Event interface is fed by real engines, remote workers
// and the simulated cluster, so live dashboards work identically for
// real and simulated runs.
package telemetry

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Subscription is one asynchronous consumer of a Bus. Receive events
// from C; the channel is closed by Bus.Close after the final publish.
type Subscription struct {
	// C delivers events in publish order. Bounded: when the consumer
	// lags more than the buffer, newest events are dropped (and
	// counted) rather than stalling publishers.
	C <-chan core.Event

	c       chan core.Event
	dropped atomic.Int64
}

// Dropped reports how many events this subscriber lost to a full
// buffer.
func (s *Subscription) Dropped() int64 { return s.dropped.Load() }

// Bus fans job-lifecycle events out to taps (synchronous, hot-path
// cheap) and subscriptions (asynchronous, bounded, lossy). Publish
// never blocks, whatever consumers do.
//
// The consumer set lives in an immutable snapshot swapped by writers
// (Tap/Subscribe/Close are rare) so Publish — called once per lifecycle
// transition of every job — is lock-free: one atomic pointer load plus
// the deliveries, with no RWMutex cacheline for all engine workers to
// contend on.
type Bus struct {
	state atomic.Pointer[busState]
	// inflight counts Publishes between their state load and their last
	// channel send; Close waits for it to drain after swapping in the
	// closed state, so it never closes a channel mid-send.
	inflight atomic.Int64
	mu       sync.Mutex // serializes writers only

	published atomic.Int64
	dropped   atomic.Int64
}

// busState is one immutable consumer-set snapshot.
type busState struct {
	taps   []func(core.Event)
	subs   []*Subscription
	closed bool
}

var emptyBusState = &busState{}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

func (b *Bus) load() *busState {
	if st := b.state.Load(); st != nil {
		return st
	}
	return emptyBusState
}

// Tap registers fn to run synchronously inside every Publish. It must
// be concurrency-safe and restricted to cheap work (atomic counter
// updates); anything slower belongs in a Subscription.
func (b *Bus) Tap(fn func(core.Event)) {
	b.mu.Lock()
	old := b.load()
	st := &busState{
		taps:   append(append([]func(core.Event){}, old.taps...), fn),
		subs:   old.subs,
		closed: old.closed,
	}
	b.state.Store(st)
	b.mu.Unlock()
}

// Subscribe registers an asynchronous consumer with the given buffer
// capacity (<=0 selects 4096). Consume from the returned
// Subscription's C until it is closed.
func (b *Bus) Subscribe(buf int) *Subscription {
	if buf <= 0 {
		buf = 4096
	}
	s := &Subscription{c: make(chan core.Event, buf)}
	s.C = s.c
	b.mu.Lock()
	old := b.load()
	if old.closed {
		close(s.c)
	} else {
		st := &busState{
			taps:   old.taps,
			subs:   append(append([]*Subscription{}, old.subs...), s),
			closed: false,
		}
		b.state.Store(st)
	}
	b.mu.Unlock()
	return s
}

// Publish delivers one event: taps run inline, subscribers get a
// non-blocking send (dropped and counted when their buffer is full).
// The signature matches core.Spec.OnEvent. Publishing after Close is a
// counted drop.
func (b *Bus) Publish(ev core.Event) {
	b.inflight.Add(1)
	st := b.load()
	if st.closed {
		b.inflight.Add(-1)
		b.dropped.Add(1)
		return
	}
	for _, tap := range st.taps {
		tap(ev)
	}
	for _, s := range st.subs {
		select {
		case s.c <- ev:
		default:
			s.dropped.Add(1)
			b.dropped.Add(1)
		}
	}
	b.inflight.Add(-1)
	b.published.Add(1)
}

// Unsubscribe detaches one subscription and closes its channel. Needed
// by consumers that come and go while the bus lives on — a job-service
// watch stream whose HTTP client disconnected mid-run must not leave a
// dead channel absorbing (and drop-counting) every later publish.
// Unsubscribing twice, or after Close, is a no-op.
func (b *Bus) Unsubscribe(s *Subscription) {
	b.mu.Lock()
	defer b.mu.Unlock()
	old := b.load()
	if old.closed {
		return
	}
	idx := -1
	for i, cand := range old.subs {
		if cand == s {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	subs := make([]*Subscription, 0, len(old.subs)-1)
	subs = append(subs, old.subs[:idx]...)
	subs = append(subs, old.subs[idx+1:]...)
	b.state.Store(&busState{taps: old.taps, subs: subs, closed: false})
	// Mirror Close: publishers that loaded the old snapshot may still be
	// sending into s; wait them out before closing its channel.
	for b.inflight.Load() > 0 {
		runtime.Gosched()
	}
	close(s.c)
}

// Close marks the bus finished and closes every subscription channel.
// Call after the engine run returns: every already-published event is
// still buffered for consumers to drain.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	old := b.load()
	if old.closed {
		return
	}
	b.state.Store(&busState{taps: old.taps, subs: nil, closed: true})
	// Publishes that loaded the pre-close state may still be sending;
	// wait them out before closing their target channels.
	for b.inflight.Load() > 0 {
		runtime.Gosched()
	}
	for _, s := range old.subs {
		close(s.c)
	}
}

// Published returns the number of events accepted by Publish.
func (b *Bus) Published() int64 { return b.published.Load() }

// Dropped returns the total events lost across all subscribers.
func (b *Bus) Dropped() int64 { return b.dropped.Load() }
