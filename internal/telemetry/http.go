package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns an http.Handler serving reg in the Prometheus text
// exposition format on every path (conventionally mounted at /metrics).
func Handler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteText(w)
	})
}

// ServeOption customizes Serve's listener surface.
type ServeOption func(*serveConfig)

type serveConfig struct {
	pprof bool
	extra map[string]http.Handler
}

// WithPprof mounts the stdlib net/http/pprof handlers under
// /debug/pprof/ on the metrics listener. Off by default: profiling
// endpoints expose goroutine stacks (command lines, hostnames), so
// they are opt-in via each binary's -pprof flag.
func WithPprof() ServeOption {
	return func(c *serveConfig) { c.pprof = true }
}

// WithHandler mounts h at pattern on the metrics listener (e.g. a
// flight-recorder dump endpoint riding the existing port).
func WithHandler(pattern string, h http.Handler) ServeOption {
	return func(c *serveConfig) {
		if c.extra == nil {
			c.extra = map[string]http.Handler{}
		}
		c.extra[pattern] = h
	}
}

// MountPprof adds the stdlib pprof handlers to mux under /debug/pprof/.
func MountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Serve starts a metrics HTTP server on addr in the background and
// returns the bound address (useful with ":0") and a closer. The
// endpoint is GET /metrics; / serves a pointer to it. Options add
// opt-in surfaces (WithPprof, WithHandler).
func Serve(addr string, reg *Registry, opts ...ServeOption) (bound string, closeFn func() error, err error) {
	var cfg serveConfig
	for _, o := range opts {
		o(&cfg)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(reg))
	if cfg.pprof {
		MountPprof(mux)
	}
	for pattern, h := range cfg.extra {
		mux.Handle(pattern, h)
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "see /metrics")
	})
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}
