package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"time"
)

// Handler returns an http.Handler serving reg in the Prometheus text
// exposition format on every path (conventionally mounted at /metrics).
func Handler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteText(w)
	})
}

// Serve starts a metrics HTTP server on addr in the background and
// returns the bound address (useful with ":0") and a closer. The
// endpoint is GET /metrics; / serves a pointer to it.
func Serve(addr string, reg *Registry) (bound string, closeFn func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(reg))
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "see /metrics")
	})
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}
