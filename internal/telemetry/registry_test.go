package telemetry

import (
	"fmt"
	"io"
	"strings"
	"testing"
	"time"
)

func TestRegistryExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_jobs_total", "Jobs processed.", L("outcome", "ok"))
	c.Add(7)
	reg.Counter("test_jobs_total", "Jobs processed.", L("outcome", "fail")).Inc()
	g := reg.Gauge("test_busy", "Busy slots.")
	g.Set(3)
	reg.GaugeFunc("test_depth", "Queue depth.", func() float64 { return 2.5 })

	var sb strings.Builder
	reg.WriteText(&sb)
	want := `# HELP test_jobs_total Jobs processed.
# TYPE test_jobs_total counter
test_jobs_total{outcome="ok"} 7
test_jobs_total{outcome="fail"} 1
# HELP test_busy Busy slots.
# TYPE test_busy gauge
test_busy 3
# HELP test_depth Queue depth.
# TYPE test_depth gauge
test_depth 2.5
`
	if sb.String() != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("dup_total", "help")
	b := reg.Counter("dup_total", "help")
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("duplicate registration does not share state")
	}
	// Distinct labels are distinct series under one family.
	x := reg.Counter("dup_total", "help", L("k", "v"))
	if x == a {
		t.Fatal("distinct labels shared a series")
	}
	var sb strings.Builder
	reg.WriteText(&sb)
	if strings.Count(sb.String(), "# TYPE dup_total") != 1 {
		t.Fatalf("family emitted more than once:\n%s", sb.String())
	}
}

func TestRegistryLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("esc_total", "h", L("cmd", `say "hi\there"`+"\n")).Inc()
	var sb strings.Builder
	reg.WriteText(&sb)
	if !strings.Contains(sb.String(), `cmd="say \"hi\\there\"\n"`) {
		t.Fatalf("label not escaped: %q", sb.String())
	}
}

// TestRegistryLabelEscapingClasses pins each exposition-format escape
// class on its own, plus the pathological combinations command-line
// label values actually produce (quoted args, Windows paths, embedded
// scripts with trailing newlines).
func TestRegistryLabelEscapingClasses(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // escaped form between the quotes
	}{
		{"plain", "hello", `hello`},
		{"double_quote", `a"b`, `a\"b`},
		{"only_quotes", `""`, `\"\"`},
		{"backslash", `C:\jobs\run`, `C:\\jobs\\run`},
		{"trailing_backslash", `dir\`, `dir\\`},
		{"newline", "line1\nline2", `line1\nline2`},
		{"trailing_newline", "cmd\n", `cmd\n`},
		{"backslash_n_literal", `a\nb`, `a\\nb`}, // literal backslash-n must not collapse into a newline escape
		{"quote_backslash_newline", "x=\"a\\b\"\n", `x=\"a\\b\"\n`},
		{"empty", "", ``},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg := NewRegistry()
			reg.Counter("esc_total", "h", L("v", tc.in)).Inc()
			var sb strings.Builder
			reg.WriteText(&sb)
			want := fmt.Sprintf("esc_total{v=\"%s\"} 1\n", tc.want)
			if !strings.Contains(sb.String(), want) {
				t.Fatalf("escaping %q:\nwant line %q\ngot:\n%s", tc.in, want, sb.String())
			}
			// The rendered sample must stay a single line (plus the two
			// header lines): an unescaped newline would tear the format.
			if got := strings.Count(sb.String(), "\n"); got != 3 {
				t.Fatalf("exposition for %q spans %d lines, want 3:\n%q", tc.in, got, sb.String())
			}
		})
	}
}

// TestCounterFunc checks scrape-time counters render with counter
// type and read their source at write time.
func TestCounterFunc(t *testing.T) {
	reg := NewRegistry()
	n := 41.0
	reg.CounterFunc("fn_total", "h", func() float64 { return n }, L("src", "bus"))
	n++
	var sb strings.Builder
	reg.WriteText(&sb)
	for _, want := range []string{"# TYPE fn_total counter", `fn_total{src="bus"} 42`} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("missing %q in:\n%s", want, sb.String())
		}
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	h.ObserveDuration(20 * time.Millisecond)
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if s := h.Sum(); s < 5.574 || s > 5.576 {
		t.Fatalf("sum = %v", s)
	}
	var sb strings.Builder
	reg.WriteText(&sb)
	out := sb.String()
	for _, line := range []string{
		`lat_seconds_bucket{le="0.01"} 1`,
		`lat_seconds_bucket{le="0.1"} 3`,
		`lat_seconds_bucket{le="1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_count 5`,
	} {
		if !strings.Contains(out, line) {
			t.Fatalf("missing %q in:\n%s", line, out)
		}
	}
	if !strings.Contains(out, "# TYPE lat_seconds histogram") {
		t.Fatalf("missing histogram TYPE line:\n%s", out)
	}
}

func TestHistogramBoundaryValueIsCumulative(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("edge_seconds", "h", []float64{1, 2})
	h.Observe(1) // le="1" includes exactly-1 per Prometheus semantics
	var sb strings.Builder
	reg.WriteText(&sb)
	if !strings.Contains(sb.String(), `edge_seconds_bucket{le="1"} 1`) {
		t.Fatalf("boundary observation not in its bucket:\n%s", sb.String())
	}
}

func TestRegisterTextBlocks(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("first_total", "h").Inc()
	reg.RegisterText(func(w io.Writer) {
		fmt.Fprintln(w, "# TYPE dynamic_gauge gauge")
		fmt.Fprintln(w, `dynamic_gauge{worker="w1"} 4`)
	})
	var sb strings.Builder
	reg.WriteText(&sb)
	out := sb.String()
	if !strings.Contains(out, `dynamic_gauge{worker="w1"} 4`) {
		t.Fatalf("dynamic block missing:\n%s", out)
	}
	if strings.Index(out, "first_total") > strings.Index(out, "dynamic_gauge") {
		t.Fatalf("dynamic blocks must follow registered families:\n%s", out)
	}
}
