package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"repro/internal/core"
)

// eventJSON is the stable JSONL wire form of a lifecycle event.
type eventJSON struct {
	Type    string  `json:"type"`
	Seq     int     `json:"seq"`
	Slot    int     `json:"slot,omitempty"`
	Attempt int     `json:"attempt,omitempty"`
	T       string  `json:"t"`
	Command string  `json:"command,omitempty"`
	OK      *bool   `json:"ok,omitempty"`
	Exit    *int    `json:"exit,omitempty"`
	Host    string  `json:"host,omitempty"`
	DurS    float64 `json:"dur_s,omitempty"`
	DispS   float64 `json:"dispatch_s,omitempty"`
	// Fine-grained phase marks (see internal/span); omitted when the
	// emitter could not attribute them.
	RenderS   float64 `json:"render_s,omitempty"`
	End       string  `json:"end,omitempty"`
	WDispS    float64 `json:"worker_dispatch_s,omitempty"`
	ContS     float64 `json:"container_s,omitempty"`
	StageInS  float64 `json:"stagein_s,omitempty"`
	StageOutS float64 `json:"stageout_s,omitempty"`
}

// JSONLSink streams lifecycle events as one JSON object per line — the
// machine-readable live counterpart of the joblog. Feed it from a Bus
// subscription; it is safe for concurrent use.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONLSink writes events to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Consume writes one event line. Encoding errors are sticky and
// reported by Err; later writes are dropped.
func (s *JSONLSink) Consume(ev core.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	j := eventJSON{
		Type:    ev.Type.String(),
		Seq:     ev.Seq,
		Slot:    ev.Slot,
		Attempt: ev.Attempt,
		T:       ev.Time.UTC().Format(time.RFC3339Nano),
		Command: ev.Command,
	}
	if ev.Type == core.EventQueued && ev.Render > 0 {
		j.RenderS = ev.Render.Seconds()
	}
	if ev.Type == core.EventFinished || ev.Type == core.EventKilled {
		ok, exit := ev.OK, ev.ExitCode
		j.OK, j.Exit = &ok, &exit
		j.Host = ev.Host
		j.DurS = ev.Duration.Seconds()
		j.DispS = ev.DispatchDelay.Seconds()
		if !ev.End.IsZero() {
			j.End = ev.End.UTC().Format(time.RFC3339Nano)
		}
		j.WDispS = ev.WorkerDispatch.Seconds()
		j.ContS = ev.ContainerStart.Seconds()
		j.StageInS = ev.StageIn.Seconds()
		j.StageOutS = ev.StageOut.Seconds()
	}
	s.err = s.enc.Encode(j)
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Pump drains a subscription, delivering each event to every consumer
// in order, until the subscription closes. Run it on its own
// goroutine; it returns when the bus is closed and the buffer drained.
func Pump(sub *Subscription, consumers ...func(core.Event)) {
	for ev := range sub.C {
		for _, fn := range consumers {
			fn(ev)
		}
	}
}
