package telemetry

import (
	"context"
	"io"
	"testing"
	"time"

	"repro/internal/args"
	"repro/internal/core"
	"repro/internal/span"
)

// runNoop drives the real engine through n no-op jobs and returns the
// wall time, with onEvent as the telemetry hook (nil = telemetry off).
func runNoop(tb testing.TB, n int, onEvent func(core.Event)) time.Duration {
	tb.Helper()
	spec, err := core.NewSpec("", 16)
	if err != nil {
		tb.Fatal(err)
	}
	spec.OnEvent = onEvent
	noop := core.FuncRunner(func(ctx context.Context, job *core.Job) ([]byte, error) {
		return nil, nil
	})
	eng, err := core.NewEngine(spec, noop)
	if err != nil {
		tb.Fatal(err)
	}
	items := make([]string, n)
	start := time.Now()
	stats, _, err := eng.Run(context.Background(), args.Literal(items...))
	if err != nil || stats.Succeeded != n {
		tb.Fatalf("stats=%+v err=%v", stats, err)
	}
	return time.Since(start)
}

// withTelemetry runs f with a fully wired pipeline — bus, RunMetrics
// tap, and a subscription draining into a streaming span recorder —
// exactly what `--metrics-addr` + `--spans` sets up, and verifies
// end-of-run accounting. Including the recorder keeps the committed
// overhead bound honest about span assembly cost.
func withTelemetry(tb testing.TB, n int, f func(publish func(core.Event)) time.Duration) time.Duration {
	tb.Helper()
	bus := NewBus()
	reg := NewRegistry()
	m := NewRunMetrics(reg, 16)
	bus.Tap(m.Observe)
	rec := span.NewRecorder(io.Discard, false)
	sub := bus.Subscribe(0)
	done := make(chan struct{})
	go func() {
		Pump(sub, rec.Consume)
		close(done)
	}()
	d := f(bus.Publish)
	bus.Close()
	<-done
	if err := rec.Close(); err != nil {
		tb.Fatal(err)
	}
	if ok, fail, killed := m.Finished(); ok != int64(n) || fail != 0 || killed != 0 {
		tb.Fatalf("telemetry accounting = %d/%d/%d, want %d/0/0", ok, fail, killed, n)
	}
	return d
}

// BenchmarkDispatchTelemetry measures engine dispatch throughput with
// telemetry off vs fully wired (bus + metrics tap + subscriber) — the
// overhead budget the design promises to keep under 5%.
func BenchmarkDispatchTelemetry(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		d := runNoop(b, b.N, nil)
		b.ReportMetric(float64(b.N)/d.Seconds(), "jobs/s")
	})
	b.Run("on", func(b *testing.B) {
		d := withTelemetry(b, b.N, func(publish func(core.Event)) time.Duration {
			return runNoop(b, b.N, publish)
		})
		b.ReportMetric(float64(b.N)/d.Seconds(), "jobs/s")
	})
}

// TestDispatchOverheadBound is the committed regression guard for the
// <5% dispatch-overhead target on 10k no-op jobs. The CI bound is
// deliberately generous (shared runners are noisy): it fails only when
// telemetry costs both >50% relative AND >5µs/job absolute.
func TestDispatchOverheadBound(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	const n = 10000
	best := func(f func() time.Duration) time.Duration {
		b := f()
		for i := 0; i < 2; i++ {
			if d := f(); d < b {
				b = d
			}
		}
		return b
	}
	off := best(func() time.Duration { return runNoop(t, n, nil) })
	on := best(func() time.Duration {
		return withTelemetry(t, n, func(publish func(core.Event)) time.Duration {
			return runNoop(t, n, publish)
		})
	})
	extra := on - off
	perJob := extra / n
	t.Logf("dispatch %d no-op jobs: off=%v on=%v (delta %v, %v/job)", n, off, on, extra, perJob)
	if raceEnabled {
		t.Skip("race-detector instrumentation dominates the measured overhead; bound not meaningful")
	}
	if on > off*3/2 && perJob > 5*time.Microsecond {
		t.Fatalf("telemetry overhead too high: off=%v on=%v (delta %v, %v/job)", off, on, extra, perJob)
	}
}
