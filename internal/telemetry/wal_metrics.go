package telemetry

import "time"

// WAL metric names, the durability companion to the run metrics.
// Documented in docs/DURABILITY.md; treat them as a stable scrape
// contract.
const (
	MetricWalFsync    = "gopar_wal_fsync_seconds"
	MetricWalReplayed = "gopar_wal_replayed_total"
	MetricWalTornTail = "gopar_wal_torn_tail_total"
)

// WalMetrics exposes the write-ahead run log's health: how much the
// durability barrier costs (fsync latency histogram) and what opening
// the log found on disk (records replayed, torn tails repaired).
type WalMetrics struct {
	fsync    *Histogram
	replayed *Counter
	tornTail *Counter
}

// NewWalMetrics registers the WAL metrics on reg.
func NewWalMetrics(reg *Registry) *WalMetrics {
	m := &WalMetrics{}
	m.fsync = reg.Histogram(MetricWalFsync,
		"Write-ahead log fsync latency per group commit.",
		[]float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1})
	m.replayed = reg.Counter(MetricWalReplayed,
		"Log records replayed when the write-ahead log was opened.")
	m.tornTail = reg.Counter(MetricWalTornTail,
		"Torn segment tails truncated while replaying the write-ahead log.")
	return m
}

// ObserveFsync records one group commit's fsync duration. Pass it to
// wal.Options.FsyncObserver; it is called from the flusher goroutine,
// off the dispatch path.
func (m *WalMetrics) ObserveFsync(d time.Duration) { m.fsync.ObserveDuration(d) }

// RecordReplay folds the result of the open-time replay (record count
// and torn tails found) into the counters.
func (m *WalMetrics) RecordReplay(records, tornTails int) {
	m.replayed.Add(int64(records))
	m.tornTail.Add(int64(tornTails))
}
