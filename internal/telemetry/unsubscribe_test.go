package telemetry

import (
	"sync"
	"testing"

	"repro/internal/core"
)

func TestUnsubscribeStopsDelivery(t *testing.T) {
	b := NewBus()
	s1 := b.Subscribe(16)
	s2 := b.Subscribe(16)

	b.Publish(core.Event{Seq: 1})
	b.Unsubscribe(s1)

	// s1's channel is closed with the buffered event still readable.
	ev, ok := <-s1.C
	if !ok || ev.Seq != 1 {
		t.Fatalf("first receive = %+v, %v", ev, ok)
	}
	if _, ok := <-s1.C; ok {
		t.Fatal("unsubscribed channel not closed")
	}

	// s2 keeps receiving; s1 absorbs nothing and counts no drops.
	b.Publish(core.Event{Seq: 2})
	if ev := <-s2.C; ev.Seq != 1 {
		t.Fatalf("s2 first event seq %d", ev.Seq)
	}
	if ev := <-s2.C; ev.Seq != 2 {
		t.Fatalf("s2 second event seq %d", ev.Seq)
	}
	if d := s1.Dropped(); d != 0 {
		t.Fatalf("unsubscribed sub counted %d drops", d)
	}

	// Double-unsubscribe and unsubscribe-after-close are no-ops.
	b.Unsubscribe(s1)
	b.Close()
	b.Unsubscribe(s2)
	if _, ok := <-s2.C; ok {
		t.Fatal("s2 channel not closed by Close")
	}
}

// TestUnsubscribeConcurrentWithPublish: detaching mid-stream must never
// panic (send on closed channel) however the publishes interleave.
func TestUnsubscribeConcurrentWithPublish(t *testing.T) {
	b := NewBus()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					b.Publish(core.Event{Seq: i})
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		s := b.Subscribe(4)
		// Drain a little concurrently, then detach while publishers run.
		done := make(chan struct{})
		go func() {
			for range s.C {
			}
			close(done)
		}()
		b.Unsubscribe(s)
		<-done
	}
	close(stop)
	wg.Wait()
	b.Close()
}
