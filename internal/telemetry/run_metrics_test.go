package telemetry

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// lifecycle publishes a full queued/started/finished sequence for seq.
func lifecycle(b *Bus, seq int, ok bool, killed bool) {
	now := time.Unix(1700000000, 0).Add(time.Duration(seq) * time.Second)
	b.Publish(core.Event{Type: core.EventQueued, Seq: seq, Time: now})
	b.Publish(core.Event{Type: core.EventStarted, Seq: seq, Slot: 1, Attempt: 1, Time: now})
	typ := core.EventFinished
	if killed {
		typ = core.EventKilled
	}
	exit := 0
	if !ok {
		exit = 1
	}
	b.Publish(core.Event{Type: typ, Seq: seq, Slot: 1, Attempt: 1, Time: now,
		OK: ok && !killed, ExitCode: exit, Duration: 10 * time.Millisecond,
		DispatchDelay: 2 * time.Millisecond})
}

func TestRunMetricsAccounting(t *testing.T) {
	reg := NewRegistry()
	b := NewBus()
	m := NewRunMetrics(reg, 4)
	b.Tap(m.Observe)

	for seq := 1; seq <= 5; seq++ {
		lifecycle(b, seq, true, false)
	}
	lifecycle(b, 6, false, false)
	lifecycle(b, 7, false, true)
	b.Publish(core.Event{Type: core.EventRetried, Seq: 6, Attempt: 2, Time: time.Unix(1700000010, 0)})

	ok, fail, killed := m.Finished()
	if ok != 5 || fail != 1 || killed != 1 {
		t.Fatalf("finished = %d/%d/%d", ok, fail, killed)
	}
	if m.queued.Value() != 7 || m.started.Value() != 7 || m.retried.Value() != 1 {
		t.Fatalf("queued=%d started=%d retried=%d",
			m.queued.Value(), m.started.Value(), m.retried.Value())
	}
	if m.slotsBusy.Value() != 0 {
		t.Fatalf("slots busy = %d after all finished", m.slotsBusy.Value())
	}
	if m.dispatch.Count() != 7 {
		t.Fatalf("dispatch observations = %d", m.dispatch.Count())
	}

	var sb strings.Builder
	reg.WriteText(&sb)
	out := sb.String()
	for _, line := range []string{
		MetricJobsQueued + " 7",
		MetricJobsStarted + " 7",
		MetricJobsRetried + " 1",
		MetricJobsFinished + `{outcome="ok"} 5`,
		MetricJobsFinished + `{outcome="fail"} 1`,
		MetricJobsFinished + `{outcome="killed"} 1`,
		MetricSlotsTotal + " 4",
		MetricSlotsBusy + " 0",
		MetricQueueDepth + " 0",
	} {
		if !strings.Contains(out, line) {
			t.Fatalf("missing %q in exposition:\n%s", line, out)
		}
	}
	for _, name := range []string{MetricDispatchLatency, MetricThroughput, MetricElapsed} {
		if !strings.Contains(out, name) {
			t.Fatalf("missing family %q in exposition:\n%s", name, out)
		}
	}
}

func TestRunMetricsQueueDepthAndBusy(t *testing.T) {
	reg := NewRegistry()
	m := NewRunMetrics(reg, 2)
	now := time.Now()
	for seq := 1; seq <= 3; seq++ {
		m.Observe(core.Event{Type: core.EventQueued, Seq: seq, Time: now})
	}
	m.Observe(core.Event{Type: core.EventStarted, Seq: 1, Slot: 1, Time: now})
	var sb strings.Builder
	reg.WriteText(&sb)
	out := sb.String()
	if !strings.Contains(out, MetricQueueDepth+" 2") {
		t.Fatalf("queue depth wrong:\n%s", out)
	}
	if !strings.Contains(out, MetricSlotsBusy+" 1") {
		t.Fatalf("busy slots wrong:\n%s", out)
	}
}

func TestJSONLSink(t *testing.T) {
	var sb strings.Builder
	sink := NewJSONLSink(&sb)
	b := NewBus()
	sub := b.Subscribe(64)
	done := make(chan struct{})
	go func() { Pump(sub, sink.Consume); close(done) }()

	lifecycle(b, 1, true, false)
	lifecycle(b, 2, false, true)
	b.Close()
	<-done
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}

	var types []string
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		types = append(types, rec["type"].(string))
		if rec["type"] == "finished" {
			if ok, isSet := rec["ok"].(bool); !isSet || !ok {
				t.Fatalf("finished line missing ok=true: %v", rec)
			}
			if _, isSet := rec["dur_s"]; !isSet {
				t.Fatalf("finished line missing dur_s: %v", rec)
			}
		}
		if rec["type"] == "killed" {
			if ok := rec["ok"].(bool); ok {
				t.Fatalf("killed line claims ok: %v", rec)
			}
		}
	}
	want := []string{"queued", "started", "finished", "queued", "started", "killed"}
	if strings.Join(types, ",") != strings.Join(want, ",") {
		t.Fatalf("event sequence = %v, want %v", types, want)
	}
}
