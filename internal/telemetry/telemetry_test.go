package telemetry

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

func ev(t core.EventType, seq int) core.Event {
	return core.Event{Type: t, Seq: seq, Time: time.Unix(1700000000, 0)}
}

func TestBusTapRunsSynchronously(t *testing.T) {
	b := NewBus()
	var got []int
	b.Tap(func(e core.Event) { got = append(got, e.Seq) })
	for i := 1; i <= 3; i++ {
		b.Publish(ev(core.EventQueued, i))
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("tap saw %v", got)
	}
	if b.Published() != 3 {
		t.Fatalf("published = %d", b.Published())
	}
}

func TestBusSubscriptionOrderAndClose(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(16)
	for i := 1; i <= 5; i++ {
		b.Publish(ev(core.EventStarted, i))
	}
	b.Close()
	var seqs []int
	for e := range sub.C {
		seqs = append(seqs, e.Seq)
	}
	if len(seqs) != 5 {
		t.Fatalf("drained %v", seqs)
	}
	for i, s := range seqs {
		if s != i+1 {
			t.Fatalf("out of order: %v", seqs)
		}
	}
	if sub.Dropped() != 0 || b.Dropped() != 0 {
		t.Fatalf("unexpected drops: sub=%d bus=%d", sub.Dropped(), b.Dropped())
	}
}

func TestBusSlowSubscriberNeverBlocksPublish(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(2) // tiny buffer, nobody reading
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			b.Publish(ev(core.EventQueued, i))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish blocked on a full subscription")
	}
	if sub.Dropped() != 98 {
		t.Fatalf("dropped = %d, want 98", sub.Dropped())
	}
	if b.Dropped() != 98 {
		t.Fatalf("bus dropped = %d, want 98", b.Dropped())
	}
	b.Close()
	n := 0
	for range sub.C {
		n++
	}
	if n != 2 {
		t.Fatalf("buffered events = %d, want 2", n)
	}
}

func TestBusPublishAfterClose(t *testing.T) {
	b := NewBus()
	var taps int
	b.Tap(func(core.Event) { taps++ })
	b.Close()
	b.Close() // idempotent
	b.Publish(ev(core.EventQueued, 1))
	if taps != 0 {
		t.Fatal("tap ran after Close")
	}
	if b.Dropped() != 1 {
		t.Fatalf("post-close publish not counted as drop: %d", b.Dropped())
	}
	// Subscribing after Close yields an already-closed channel.
	sub := b.Subscribe(0)
	if _, ok := <-sub.C; ok {
		t.Fatal("subscription after Close delivered an event")
	}
}

func TestBusConcurrentPublish(t *testing.T) {
	b := NewBus()
	var mu sync.Mutex
	seen := 0
	b.Tap(func(core.Event) { mu.Lock(); seen++; mu.Unlock() })
	sub := b.Subscribe(4096)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b.Publish(ev(core.EventFinished, g*200+i))
			}
		}(g)
	}
	wg.Wait()
	b.Close()
	if seen != 1600 || b.Published() != 1600 {
		t.Fatalf("taps=%d published=%d", seen, b.Published())
	}
	drained := 0
	for range sub.C {
		drained++
	}
	if drained+int(sub.Dropped()) != 1600 {
		t.Fatalf("drained=%d dropped=%d, want sum 1600", drained, sub.Dropped())
	}
}

func TestPumpDeliversInOrder(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(64)
	var a, c []int
	done := make(chan struct{})
	go func() {
		Pump(sub,
			func(e core.Event) { a = append(a, e.Seq) },
			func(e core.Event) { c = append(c, e.Seq) })
		close(done)
	}()
	for i := 1; i <= 10; i++ {
		b.Publish(ev(core.EventQueued, i))
	}
	b.Close()
	<-done
	if fmt.Sprint(a) != fmt.Sprint(c) || len(a) != 10 || a[9] != 10 {
		t.Fatalf("pump delivery a=%v c=%v", a, c)
	}
}
