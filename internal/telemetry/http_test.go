package telemetry

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

// TestServeDefaultHasNoPprof pins the opt-in: without WithPprof the
// metrics listener must not expose profiling endpoints.
func TestServeDefaultHasNoPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("t_total", "h").Inc()
	bound, closeFn, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn()
	if code, body := get(t, "http://"+bound+"/metrics"); code != 200 || !strings.Contains(body, "t_total 1") {
		t.Fatalf("/metrics: code %d body %q", code, body)
	}
	// The "/" pointer handler catches unknown paths, so the probe
	// checks the body: pprof's index would mention goroutine profiles.
	if _, body := get(t, "http://"+bound+"/debug/pprof/"); !strings.Contains(body, "see /metrics") {
		t.Fatalf("/debug/pprof/ served without WithPprof: %q", body)
	}
}

// TestServeWithPprof checks the opt-in mounts the stdlib profiler.
func TestServeWithPprof(t *testing.T) {
	bound, closeFn, err := Serve("127.0.0.1:0", NewRegistry(), WithPprof())
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn()
	code, body := get(t, "http://"+bound+"/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: code %d body %q", code, body)
	}
}

// TestServeWithHandler checks extra handlers ride the metrics port.
func TestServeWithHandler(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "flight here")
	})
	bound, closeFn, err := Serve("127.0.0.1:0", NewRegistry(), WithHandler("/debug/flight", h))
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn()
	if code, body := get(t, "http://"+bound+"/debug/flight"); code != 200 || body != "flight here" {
		t.Fatalf("/debug/flight: code %d body %q", code, body)
	}
}
