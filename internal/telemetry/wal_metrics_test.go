package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestWalMetrics(t *testing.T) {
	reg := NewRegistry()
	m := NewWalMetrics(reg)

	m.ObserveFsync(2 * time.Millisecond)
	m.ObserveFsync(500 * time.Microsecond)
	m.RecordReplay(42, 1)
	m.RecordReplay(8, 0)

	if got := m.fsync.Count(); got != 2 {
		t.Fatalf("fsync count = %d, want 2", got)
	}
	if got := m.replayed.Value(); got != 50 {
		t.Fatalf("replayed = %d, want 50", got)
	}
	if got := m.tornTail.Value(); got != 1 {
		t.Fatalf("torn tails = %d, want 1", got)
	}

	var sb strings.Builder
	reg.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{
		MetricWalFsync + "_count 2",
		MetricWalReplayed + " 50",
		MetricWalTornTail + " 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("scrape output missing %q:\n%s", want, out)
		}
	}
}
