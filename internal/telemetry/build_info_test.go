package telemetry

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestRegisterBuildInfo(t *testing.T) {
	reg := NewRegistry()
	start := time.Unix(1700000000, 500000000)
	RegisterBuildInfo(reg, "gopar", start)

	var buf bytes.Buffer
	reg.WriteText(&buf)
	out := buf.String()

	if !strings.Contains(out, "gopar_build_info{") {
		t.Fatalf("no build_info series:\n%s", out)
	}
	if !strings.Contains(out, fmt.Sprintf("goversion=%q", runtime.Version())) {
		t.Errorf("goversion label missing:\n%s", out)
	}
	if !strings.Contains(out, `version=`) {
		t.Errorf("version label missing:\n%s", out)
	}
	// Start timestamp: value is unix seconds with sub-second precision.
	wantStart := fmt.Sprintf("%g", float64(start.UnixNano())/1e9)
	found := false
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "gopar_start_time_seconds") &&
			strings.HasSuffix(line, wantStart) {
			found = true
		}
	}
	if !found {
		t.Errorf("start_time_seconds %s not found:\n%s", wantStart, out)
	}
}

func TestResolveVersionOverride(t *testing.T) {
	old := Version
	defer func() { Version = old }()
	Version = "v9.9.9-test"
	if got := resolveVersion(); got != "v9.9.9-test" {
		t.Errorf("resolveVersion = %q", got)
	}
	Version = ""
	if got := resolveVersion(); got == "" {
		t.Error("resolveVersion empty without override")
	}
}
