// Package cluster models compute nodes and clusters, and provides the
// simulated counterpart of the parallel engine: Instance, a GNU-Parallel-
// style greedy slot dispatcher whose per-launch costs are calibrated to
// the paper's measured rates. The same dispatch semantics as
// internal/core — greedy refill of a fixed slot pool — execute here in
// virtual time, which is what lets a laptop reproduce 9,000-node runs.
package cluster

import (
	"time"

	"repro/internal/storage"
)

// Calibration constants (single source of truth; see DESIGN.md §6).
const (
	// DispatchCost is the serial per-task launch cost of one parallel
	// instance. Fig 3: a single instance launches ~470 procs/s,
	// 1/470 s ≈ 2.128 ms.
	DispatchCost = 2128 * time.Microsecond

	// LaunchCapacity is how many process launches a node's OS can
	// progress concurrently. Fig 3: many instances together reach
	// ~6,400 procs/s; 6,400/s × 2.128 ms ≈ 13.6 → 14.
	LaunchCapacity = 14

	// StageLookahead is the floor on any node↔shared-service virtual
	// latency: reaching Lustre or a cluster-wide coordinator costs at
	// least one fabric round-trip plus service dispatch (~tens of ms on
	// production interconnect + VFS + RPC stacks at load). It is the
	// conservative-synchronization window of the sharded DES: no
	// cross-group message may be timestamped closer than this, so all
	// groups can run StageLookahead-wide epochs with no mid-window
	// synchronization at all.
	StageLookahead = 25 * time.Millisecond
)

// Profile describes a node architecture.
type Profile struct {
	Name string
	// Cores is the schedulable CPU thread count (the default -j).
	Cores int
	// GPUs is the schedulable accelerator count.
	GPUs int
	// LaunchCapacity bounds concurrent process launches node-wide.
	LaunchCapacity int
	// DispatchCost is the default per-task dispatch cost of one
	// parallel instance on this node.
	DispatchCost time.Duration
	// StageLookahead is the declared minimum latency for cross-group
	// interactions (shared-storage staging, coordinator RPCs) from
	// nodes of this profile — the lookahead bound handed to the
	// sharded DES scheduler.
	StageLookahead time.Duration
	// NVMe returns the node-local storage profile for node id.
	NVMe func(node int) storage.Config
}

// Frontier approximates an OLCF Frontier compute node: 64 dual-threaded
// cores (128 schedulable), 4 MI250X (8 schedulable GCDs), node-local NVMe.
func Frontier() Profile {
	return Profile{
		Name:           "frontier",
		Cores:          128,
		GPUs:           8,
		LaunchCapacity: LaunchCapacity,
		DispatchCost:   DispatchCost,
		StageLookahead: StageLookahead,
		NVMe:           storage.NVMeProfile,
	}
}

// PerlmutterCPU approximates a NERSC Perlmutter CPU node: 2×64 cores
// dual-threaded (256 schedulable).
func PerlmutterCPU() Profile {
	return Profile{
		Name:           "perlmutter-cpu",
		Cores:          256,
		GPUs:           0,
		LaunchCapacity: LaunchCapacity,
		DispatchCost:   DispatchCost,
		StageLookahead: StageLookahead,
		NVMe:           storage.NVMeProfile,
	}
}

// DTN approximates a data-transfer node: few cores, no GPUs, high-speed
// network to both filesystems (§IV-E: measured 2,385 Mb/s per node at 32
// rsync streams).
func DTN() Profile {
	return Profile{
		Name:           "dtn",
		Cores:          32,
		GPUs:           0,
		LaunchCapacity: LaunchCapacity,
		DispatchCost:   DispatchCost,
		StageLookahead: StageLookahead,
		NVMe:           storage.NVMeProfile,
	}
}
