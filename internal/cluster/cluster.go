package cluster

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Node is one simulated compute node.
type Node struct {
	ID      int
	Profile Profile
	Eng     *sim.Engine
	// Cores bounds concurrently running task payloads (one per thread).
	Cores *sim.Resource
	// Launch bounds concurrent process-launch work node-wide; it is
	// what caps aggregate dispatch rate across parallel instances.
	Launch *sim.Resource
	// GPUs are the node's accelerators (nil if none).
	GPUs *gpu.Set
	// NVMe is the node-local filesystem.
	NVMe *storage.FS
	// RNG is the node's private random stream.
	RNG *sim.RNG
	// Group is the logical DES group hosting this node (0 when the
	// cluster was built on a plain engine with New).
	Group int

	// down marks the node crashed; failEpoch counts crashes so work
	// that was running when one struck can detect it at completion
	// (the DES process layer has no preemption, so "the node died
	// under me" is observed, not delivered).
	down      bool
	failEpoch int
}

// Hostname returns a Frontier-style node name.
func (n *Node) Hostname() string { return fmt.Sprintf("node%05d", n.ID) }

// Fail crashes the node: tasks running now observe the epoch change and
// report ErrNodeDown when they finish; tasks launched while the node is
// down fail immediately. Failing a down node is a no-op. Call from
// engine context (e.g. a scheduled event) or a process.
func (n *Node) Fail() {
	if n.down {
		return
	}
	n.down = true
	n.failEpoch++
}

// Recover brings a crashed node back into service.
func (n *Node) Recover() { n.down = false }

// Alive reports whether the node is up.
func (n *Node) Alive() bool { return !n.down }

// FailEpoch returns the number of crashes so far; compare snapshots
// taken before and after a stretch of work to detect a mid-flight crash.
func (n *Node) FailEpoch() int { return n.failEpoch }

// Cluster is a set of identical nodes sharing a parallel filesystem.
type Cluster struct {
	// Eng is the engine hosting cluster-shared services: the sole engine
	// for New, group 0's engine for NewSharded.
	Eng     *sim.Engine
	Profile Profile
	Nodes   []*Node
	// Lustre is the shared parallel filesystem (nil if not configured).
	// Under NewSharded it lives on group 0; nodes reach it with
	// cross-group posts bounded by Profile.StageLookahead.
	Lustre *storage.FS
	// Sharded is the sharded DES hosting this cluster (nil under New).
	Sharded *sim.ShardedEngine
}

// Option configures cluster construction.
type Option func(*options)

type options struct {
	lustre  *storage.Config
	noLocal bool
	base    *sim.RNG
}

// WithLustre attaches a shared filesystem with the given profile.
func WithLustre(cfg storage.Config) Option {
	return func(o *options) { o.lustre = &cfg }
}

// WithoutNVMe builds nodes without local storage (DTN-style nodes that
// only move data between shared filesystems).
func WithoutNVMe() Option {
	return func(o *options) { o.noLocal = true }
}

// WithRand derives every node and filesystem stream from base instead of
// the engine's RNG tree. Passing e.RNG() is a no-op (the default); a
// sharded model passes its own base so stream derivation is identical
// whether nodes land on one shared oracle engine or on per-group
// engines with unrelated seeds.
func WithRand(base *sim.RNG) Option {
	return func(o *options) { o.base = base }
}

// New builds a cluster of n nodes with the given profile on engine e.
func New(e *sim.Engine, p Profile, n int, opts ...Option) *Cluster {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	base := o.base
	if base == nil {
		base = e.RNG()
	}
	c := &Cluster{Eng: e, Profile: p}
	if o.lustre != nil {
		c.Lustre = storage.NewWithRand(e, *o.lustre, base.Split("storage/"+o.lustre.Name))
	}
	for i := 0; i < n; i++ {
		c.Nodes = append(c.Nodes, newNode(e, p, i, 0, base, &o))
	}
	return c
}

// newNode builds one node on engine e in DES group g, deriving its
// streams from base by node id only — never by group or engine — so a
// node's behavior is a pure function of (base seed, id).
func newNode(e *sim.Engine, p Profile, id, g int, base *sim.RNG, o *options) *Node {
	node := &Node{
		ID:      id,
		Profile: p,
		Eng:     e,
		Group:   g,
		Cores:   sim.NewResource(e, p.Cores),
		Launch:  sim.NewResource(e, p.LaunchCapacity),
		RNG:     base.Split(fmt.Sprintf("node/%d", id)),
	}
	if p.GPUs > 0 {
		node.GPUs = gpu.NewSet(e, p.GPUs)
	}
	if !o.noLocal && p.NVMe != nil {
		cfg := p.NVMe(id)
		node.NVMe = storage.NewWithRand(e, cfg, base.Split("storage/"+cfg.Name))
	}
	return node
}

// NewSharded builds a cluster whose nodes live on the group engines of a
// sharded DES. Group 0 is reserved for cluster-shared services (the
// Lustre filesystem, schedulers); node i lands on group 1 + i mod
// (groups-1), so the node population balances across groups — and
// therefore shards — regardless of the node count. Cluster.Eng is group
// 0's engine. Every random stream derives from base, which is what keeps
// digests identical between the serial oracle and any shard count.
func NewSharded(se *sim.ShardedEngine, p Profile, n int, base *sim.RNG, opts ...Option) *Cluster {
	if se.NumGroups() < 2 {
		panic("cluster: NewSharded needs >= 2 groups (group 0 hosts shared services)")
	}
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	if o.base != nil {
		base = o.base
	}
	c := &Cluster{Eng: se.Engine(0), Profile: p, Sharded: se}
	if o.lustre != nil {
		c.Lustre = storage.NewWithRand(se.Engine(0), *o.lustre, base.Split("storage/"+o.lustre.Name))
	}
	ngroups := se.NumGroups() - 1
	for i := 0; i < n; i++ {
		g := 1 + i%ngroups
		c.Nodes = append(c.Nodes, newNode(se.Engine(g), p, i, g, base, &o))
	}
	return c
}

// Distribute shards items across nnodes the way the paper's driver script
// does (Listing 1): awk 'NR % NNODE == NODEID' with 1-based line numbers,
// so node k receives items whose 1-based index i satisfies i % nnodes == k.
func Distribute[T any](items []T, nnodes int) [][]T {
	if nnodes < 1 {
		panic("cluster: Distribute needs >= 1 node")
	}
	out := make([][]T, nnodes)
	for i, v := range items {
		nr := i + 1 // awk NR is 1-based
		node := nr % nnodes
		out[node] = append(out[node], v)
	}
	return out
}
