package cluster

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Node is one simulated compute node.
type Node struct {
	ID      int
	Profile Profile
	Eng     *sim.Engine
	// Cores bounds concurrently running task payloads (one per thread).
	Cores *sim.Resource
	// Launch bounds concurrent process-launch work node-wide; it is
	// what caps aggregate dispatch rate across parallel instances.
	Launch *sim.Resource
	// GPUs are the node's accelerators (nil if none).
	GPUs *gpu.Set
	// NVMe is the node-local filesystem.
	NVMe *storage.FS
	// RNG is the node's private random stream.
	RNG *sim.RNG

	// down marks the node crashed; failEpoch counts crashes so work
	// that was running when one struck can detect it at completion
	// (the DES process layer has no preemption, so "the node died
	// under me" is observed, not delivered).
	down      bool
	failEpoch int
}

// Hostname returns a Frontier-style node name.
func (n *Node) Hostname() string { return fmt.Sprintf("node%05d", n.ID) }

// Fail crashes the node: tasks running now observe the epoch change and
// report ErrNodeDown when they finish; tasks launched while the node is
// down fail immediately. Failing a down node is a no-op. Call from
// engine context (e.g. a scheduled event) or a process.
func (n *Node) Fail() {
	if n.down {
		return
	}
	n.down = true
	n.failEpoch++
}

// Recover brings a crashed node back into service.
func (n *Node) Recover() { n.down = false }

// Alive reports whether the node is up.
func (n *Node) Alive() bool { return !n.down }

// FailEpoch returns the number of crashes so far; compare snapshots
// taken before and after a stretch of work to detect a mid-flight crash.
func (n *Node) FailEpoch() int { return n.failEpoch }

// Cluster is a set of identical nodes sharing a parallel filesystem.
type Cluster struct {
	Eng     *sim.Engine
	Profile Profile
	Nodes   []*Node
	// Lustre is the shared parallel filesystem (nil if not configured).
	Lustre *storage.FS
}

// Option configures cluster construction.
type Option func(*options)

type options struct {
	lustre  *storage.Config
	noLocal bool
}

// WithLustre attaches a shared filesystem with the given profile.
func WithLustre(cfg storage.Config) Option {
	return func(o *options) { o.lustre = &cfg }
}

// WithoutNVMe builds nodes without local storage (DTN-style nodes that
// only move data between shared filesystems).
func WithoutNVMe() Option {
	return func(o *options) { o.noLocal = true }
}

// New builds a cluster of n nodes with the given profile on engine e.
func New(e *sim.Engine, p Profile, n int, opts ...Option) *Cluster {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	c := &Cluster{Eng: e, Profile: p}
	if o.lustre != nil {
		c.Lustre = storage.New(e, *o.lustre)
	}
	for i := 0; i < n; i++ {
		node := &Node{
			ID:      i,
			Profile: p,
			Eng:     e,
			Cores:   sim.NewResource(e, p.Cores),
			Launch:  sim.NewResource(e, p.LaunchCapacity),
			RNG:     e.RNG().Split(fmt.Sprintf("node/%d", i)),
		}
		if p.GPUs > 0 {
			node.GPUs = gpu.NewSet(e, p.GPUs)
		}
		if !o.noLocal && p.NVMe != nil {
			node.NVMe = storage.New(e, p.NVMe(i))
		}
		c.Nodes = append(c.Nodes, node)
	}
	return c
}

// Distribute shards items across nnodes the way the paper's driver script
// does (Listing 1): awk 'NR % NNODE == NODEID' with 1-based line numbers,
// so node k receives items whose 1-based index i satisfies i % nnodes == k.
func Distribute[T any](items []T, nnodes int) [][]T {
	if nnodes < 1 {
		panic("cluster: Distribute needs >= 1 node")
	}
	out := make([][]T, nnodes)
	for i, v := range items {
		nr := i + 1 // awk NR is 1-based
		node := nr % nnodes
		out[node] = append(out[node], v)
	}
	return out
}
