package cluster

import (
	"errors"
	"time"

	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/sim"
)

// ErrNodeDown reports a task lost to a node crash: the node was down at
// launch, or crashed while the task was running.
var ErrNodeDown = errors.New("cluster: node down")

// Task is one simulated unit of work for an Instance.
type Task struct {
	// Seq is the 1-based sequence number.
	Seq int
	// Payload runs the task's work in virtual time. It may use every
	// node facility (NVMe, GPUs, Lustre via closure). A nil payload is
	// a no-op task (the stress-test null job).
	Payload func(p *sim.Proc, tc TaskContext) error
	// FlowPayload, when non-nil (and Payload nil), expresses the task's
	// work as a lightweight callback flow instead of a goroutine
	// process: the function appends the work's steps (sleeps, resource
	// holds, filesystem ops) to fl at dispatch time. Eligible tasks —
	// no Payload, no container runtime, no UseCores, no staging — then
	// run with no goroutine and no channel handoffs, which is what
	// makes million-task experiment loops cheap. Flow payloads model
	// infallible work; node crashes are still detected and reported as
	// ErrNodeDown. See sim.Flow for the execution model.
	FlowPayload func(fl *sim.Flow, tc TaskContext)
	// StageIn and StageOut, when positive, model data staging around
	// the payload (e.g. Lustre→NVMe copy-in, result copy-out). They
	// hold the task's slot but not launch capacity, and are reported
	// as distinct phases in lifecycle events.
	StageIn, StageOut time.Duration
}

// TaskContext tells a payload where it is running.
type TaskContext struct {
	Node *Node
	// Slot is the 1-based parallel slot ({%}).
	Slot int
	Seq  int
}

// TaskResult records one simulated task execution.
type TaskResult struct {
	Seq        int
	Slot       int
	Start, End sim.Time
	Err        error
}

// Duration returns the task's virtual runtime.
func (r TaskResult) Duration() time.Duration { return r.End - r.Start }

// InstanceConfig configures one simulated parallel instance.
type InstanceConfig struct {
	// Jobs is the slot count (-j). <=0 defaults to the node's core
	// count (GNU Parallel's default of one job per CPU thread).
	Jobs int
	// DispatchCost overrides the node profile's per-task dispatch cost
	// (0 = profile default). This is the knob the dispatch-cost
	// ablation sweeps.
	DispatchCost time.Duration
	// Runtime wraps every task in a container runtime (nil = bare
	// metal).
	Runtime *container.Runtime
	// UseCores, when true, additionally acquires one node core per
	// running task, so multiple instances on one node contend for CPU
	// threads realistically.
	UseCores bool
	// OnResult, when non-nil, receives each task result as it
	// completes (virtual-time order). When nil, results are discarded
	// unless Collect is set.
	OnResult func(TaskResult)
	// OnEvent, when non-nil, receives the same job-lifecycle events a
	// real engine publishes (core.Event), with virtual timestamps
	// mapped onto the Unix epoch — so telemetry built for live runs
	// (telemetry.Bus, RunMetrics, profile.LiveTrace) observes
	// simulated instances through the identical interface.
	OnEvent func(core.Event)
	// Collect retains results in Report.Results (off for million-task
	// runs).
	Collect bool
}

// Report summarizes an Instance run.
type Report struct {
	Results             []TaskResult
	Launched, Succeeded int
	Failed              int
	FirstStart, LastEnd sim.Time
	// DispatchBusy is total virtual time the dispatcher spent launching
	// — the instance's orchestration overhead.
	DispatchBusy time.Duration
}

// Makespan is LastEnd - FirstStart.
func (r *Report) Makespan() time.Duration {
	if r.LastEnd < r.FirstStart {
		return 0
	}
	return r.LastEnd - r.FirstStart
}

// instRun is the shared state of one RunParallel invocation: the report
// being accumulated, the slot free-list, and the arena of pooled
// per-task flow states. At most Jobs flow tasks are ever in flight, so
// the free list caps at the slot count regardless of task count.
type instRun struct {
	n        *Node
	rep      *Report
	slots    *sim.Store[int]
	wg       *sim.Counter
	onResult func(TaskResult)
	onEvent  func(core.Event)
	collect  bool
	free     []*flowTask
}

// flowTask is the callback-state arena for one in-flight lightweight
// task: the fields the begin/finish steps need, plus the method-value
// callbacks bound once per pooled struct so launching a task allocates
// nothing in steady state.
type flowTask struct {
	run           *instRun
	seq, slot     int
	dispatchDelay time.Duration
	start         sim.Time
	epoch         int
	err           error
	beginFn       func()
	aliveFn       func() bool
	finishFn      func()
}

func (st *instRun) get() *flowTask {
	if n := len(st.free); n > 0 {
		ft := st.free[n-1]
		st.free[n-1] = nil
		st.free = st.free[:n-1]
		return ft
	}
	ft := &flowTask{run: st}
	ft.beginFn = ft.begin
	ft.aliveFn = ft.alive
	ft.finishFn = ft.finish
	return ft
}

// launch runs one eligible task as a flow. The program mirrors the
// goroutine task body step for step — same event scheduling pattern,
// same bookkeeping order — so switching a model from the process path
// to the flow path leaves seeded results bit-identical.
func (st *instRun) launch(task Task, slot int, dispatchDelay time.Duration) {
	ft := st.get()
	ft.seq, ft.slot, ft.dispatchDelay = task.Seq, slot, dispatchDelay
	fl := st.n.Eng.NewFlow()
	fl.Do(ft.beginFn)
	fl.Guard(ft.aliveFn)
	if task.FlowPayload != nil {
		task.FlowPayload(fl, TaskContext{Node: st.n, Slot: slot, Seq: task.Seq})
	}
	fl.Finally()
	fl.Do(ft.finishFn)
	fl.Start()
}

// begin is the flow counterpart of the task body's prologue: record the
// start time and crash epoch, and fail immediately when launched into a
// dead node.
func (ft *flowTask) begin() {
	n := ft.run.n
	ft.start = n.Eng.Now()
	ft.epoch = n.FailEpoch()
	ft.err = nil
	if !n.Alive() {
		ft.err = ErrNodeDown
	}
}

func (ft *flowTask) alive() bool { return ft.err == nil }

// finish is the flow counterpart of the task body's epilogue and
// deferred cleanup, in the same order: crash recheck, result
// bookkeeping, OnResult/Collect, the EventFinished emission, slot
// return, completion count, and recycling the arena entry.
func (ft *flowTask) finish() {
	st := ft.run
	n := st.n
	if ft.err == nil && (n.FailEpoch() != ft.epoch || !n.Alive()) {
		// The node crashed while the task was running: the work is
		// gone, whatever the payload computed.
		ft.err = ErrNodeDown
	}
	res := TaskResult{Seq: ft.seq, Slot: ft.slot, Start: ft.start, End: n.Eng.Now(), Err: ft.err}
	rep := st.rep
	if res.Err == nil {
		rep.Succeeded++
	} else {
		rep.Failed++
	}
	if res.Start < rep.FirstStart {
		rep.FirstStart = res.Start
	}
	if res.End > rep.LastEnd {
		rep.LastEnd = res.End
	}
	if st.onResult != nil {
		st.onResult(res)
	}
	if st.collect {
		rep.Results = append(rep.Results, res)
	}
	if st.onEvent != nil {
		st.onEvent(core.Event{Type: core.EventFinished, Seq: ft.seq,
			Slot: ft.slot, Attempt: 1, Time: simWall(res.End),
			OK: res.Err == nil, ExitCode: exitCodeFor(res.Err),
			Host: n.Hostname(), Duration: res.Duration(),
			DispatchDelay: ft.dispatchDelay,
			End:           simWall(res.End)})
	}
	st.slots.PutNow(ft.slot)
	st.wg.Done()
	st.free = append(st.free, ft)
}

// RunParallel simulates one GNU-Parallel-style instance executing tasks on
// node n, called from process p (the "driver" shell). It blocks p until
// every task completes, mirroring `parallel -jN cmd ::: inputs` in a
// script, and returns the report.
//
// Dispatch semantics match internal/core's engine: a fixed pool of Jobs
// slots refilled greedily; the dispatcher serially pays DispatchCost per
// launch (the measured ~2.1ms that bounds one instance at ~470 procs/s),
// while launch work node-wide is capped by the node's Launch capacity
// (which bounds many instances at ~6,400 procs/s, Fig 3).
//
// Tasks whose work is expressible as a straight-line flow — a nil or
// FlowPayload payload with no container runtime, core accounting, or
// staging — execute on the goroutine-free flow path; everything else
// runs as a full simulated process.
func (n *Node) RunParallel(p *sim.Proc, cfg InstanceConfig, tasks []Task) *Report {
	jobs := cfg.Jobs
	if jobs <= 0 {
		jobs = n.Profile.Cores
	}
	dispatchCost := cfg.DispatchCost
	if dispatchCost == 0 {
		dispatchCost = n.Profile.DispatchCost
	}

	e := n.Eng
	// Slot free-list: concurrent tasks always hold distinct slot
	// numbers, which is what makes {%}-based GPU isolation sound.
	slots := sim.NewStore[int](e, jobs)
	for s := 1; s <= jobs; s++ {
		slots.Prefill(s)
	}
	wg := sim.NewCounter(e, len(tasks))
	rep := &Report{FirstStart: sim.Forever}
	if cfg.Collect {
		// One up-front arena: collecting a million-task run should cost
		// one allocation, not a realloc-and-copy ladder.
		rep.Results = make([]TaskResult, 0, len(tasks))
	}
	st := &instRun{n: n, rep: rep, slots: slots, wg: wg,
		onResult: cfg.OnResult, onEvent: cfg.OnEvent, collect: cfg.Collect}
	flowEligible := cfg.Runtime == nil && !cfg.UseCores

	for i := range tasks {
		task := tasks[i]
		if task.Seq == 0 {
			task.Seq = i + 1
		}
		if cfg.OnEvent != nil {
			cfg.OnEvent(core.Event{Type: core.EventQueued, Seq: task.Seq, Time: simWall(p.Now())})
		}
		// Greedy refill: wait for a free slot, then pay the serial
		// dispatch cost under the node-wide launch capacity.
		slot, _ := slots.Get(p)
		dStart := p.Now()
		n.Launch.Acquire(p, 1)
		p.Sleep(n.RNG.Jitter(dispatchCost, 0.05))
		n.Launch.Release(1)
		dispatchDelay := time.Duration(p.Now() - dStart)
		rep.DispatchBusy += p.Now() - dStart
		rep.Launched++
		if cfg.OnEvent != nil {
			cfg.OnEvent(core.Event{Type: core.EventStarted, Seq: task.Seq, Slot: slot,
				Attempt: 1, Time: simWall(p.Now())})
		}

		if flowEligible && task.Payload == nil && task.StageIn == 0 && task.StageOut == 0 {
			st.launch(task, slot, dispatchDelay)
			continue
		}
		if task.FlowPayload != nil {
			// Falling through to the process path would silently skip
			// the flow payload's work; make the misconfiguration loud.
			panic("cluster: Task.FlowPayload requires a flow-eligible config (no Runtime, no UseCores) and no Payload/staging")
		}

		e.Spawn("task", func(cp *sim.Proc) {
			defer func() {
				slots.Put(cp, slot)
				wg.Done()
			}()
			res := TaskResult{Seq: task.Seq, Slot: slot, Start: cp.Now()}
			var containerDur, stageInDur, stageOutDur time.Duration
			defer func() {
				if cfg.OnEvent != nil {
					cfg.OnEvent(core.Event{Type: core.EventFinished, Seq: task.Seq,
						Slot: slot, Attempt: 1, Time: simWall(res.End),
						OK: res.Err == nil, ExitCode: exitCodeFor(res.Err),
						Host: n.Hostname(), Duration: res.Duration(),
						DispatchDelay:  dispatchDelay,
						End:            simWall(res.End),
						ContainerStart: containerDur,
						StageIn:        stageInDur, StageOut: stageOutDur})
				}
			}()
			epoch := n.FailEpoch()
			if !n.Alive() {
				// Launched into a dead node: the fork itself fails.
				res.End = cp.Now()
				res.Err = ErrNodeDown
				rep.Failed++
				if res.Start < rep.FirstStart {
					rep.FirstStart = res.Start
				}
				if res.End > rep.LastEnd {
					rep.LastEnd = res.End
				}
				if cfg.OnResult != nil {
					cfg.OnResult(res)
				}
				if cfg.Collect {
					rep.Results = append(rep.Results, res)
				}
				return
			}
			var err error
			if cfg.Runtime != nil {
				// Container startup consumes launch capacity
				// (CPU-bound namespace/image setup) and may
				// serialize or fail per the runtime model.
				cStart := cp.Now()
				if cfg.Runtime.StartupOverhead > 0 {
					n.Launch.Acquire(cp, 1)
					cp.Sleep(cfg.Runtime.StartupOverhead)
					n.Launch.Release(1)
				}
				err = cfg.Runtime.Launch(cp)
				containerDur = time.Duration(cp.Now() - cStart)
			}
			if err == nil && task.StageIn > 0 {
				sStart := cp.Now()
				cp.Sleep(task.StageIn)
				stageInDur = time.Duration(cp.Now() - sStart)
			}
			if err == nil && task.Payload != nil {
				if cfg.UseCores {
					n.Cores.Acquire(cp, 1)
				}
				err = task.Payload(cp, TaskContext{Node: n, Slot: slot, Seq: task.Seq})
				if cfg.UseCores {
					n.Cores.Release(1)
				}
			}
			if err == nil && task.StageOut > 0 {
				sStart := cp.Now()
				cp.Sleep(task.StageOut)
				stageOutDur = time.Duration(cp.Now() - sStart)
			}
			if err == nil && (n.FailEpoch() != epoch || !n.Alive()) {
				// The node crashed while the task was running: the
				// work is gone, whatever the payload computed.
				err = ErrNodeDown
			}
			res.End = cp.Now()
			res.Err = err
			if err == nil {
				rep.Succeeded++
			} else {
				rep.Failed++
			}
			if res.Start < rep.FirstStart {
				rep.FirstStart = res.Start
			}
			if res.End > rep.LastEnd {
				rep.LastEnd = res.End
			}
			if cfg.OnResult != nil {
				cfg.OnResult(res)
			}
			if cfg.Collect {
				rep.Results = append(rep.Results, res)
			}
		})
	}
	wg.Wait(p)
	if rep.FirstStart == sim.Forever {
		rep.FirstStart = 0
	}
	return rep
}

// simWall maps virtual time onto the wall clock for telemetry events:
// the simulation starts at the Unix epoch.
func simWall(t sim.Time) time.Time { return time.Unix(0, 0).UTC().Add(t) }

// exitCodeFor mirrors a simulated task error as a process exit status.
func exitCodeFor(err error) int {
	if err == nil {
		return 0
	}
	return 1
}

// NullTasks builds n no-op tasks (the stress-test payload: /bin/true).
func NullTasks(n int) []Task {
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{Seq: i + 1}
	}
	return tasks
}

// SleepTasks builds n tasks that each hold a slot for the given duration
// drawn per task by dur (e.g. a distribution closure). The tasks run on
// the lightweight flow path.
func SleepTasks(n int, dur func(i int) time.Duration) []Task {
	tasks := make([]Task, n)
	for i := range tasks {
		d := dur(i)
		tasks[i] = Task{
			Seq: i + 1,
			FlowPayload: func(fl *sim.Flow, tc TaskContext) {
				fl.Sleep(d)
			},
		}
	}
	return tasks
}
