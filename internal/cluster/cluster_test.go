package cluster

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/container"
	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/storage"
)

func newTestCluster(t *testing.T, nodes int) *Cluster {
	t.Helper()
	e := sim.NewEngine(11)
	return New(e, Frontier(), nodes, WithLustre(storage.LustreProfile()))
}

func TestClusterConstruction(t *testing.T) {
	c := newTestCluster(t, 4)
	if len(c.Nodes) != 4 {
		t.Fatalf("nodes = %d", len(c.Nodes))
	}
	n := c.Nodes[2]
	if n.Hostname() != "node00002" {
		t.Fatalf("hostname = %s", n.Hostname())
	}
	if n.Cores.Cap() != 128 || n.GPUs.Len() != 8 || n.NVMe == nil {
		t.Fatal("frontier node facilities wrong")
	}
	if c.Lustre == nil {
		t.Fatal("lustre missing")
	}
}

func TestClusterOptions(t *testing.T) {
	e := sim.NewEngine(1)
	c := New(e, DTN(), 2, WithoutNVMe())
	if c.Nodes[0].NVMe != nil {
		t.Fatal("WithoutNVMe ignored")
	}
	if c.Lustre != nil {
		t.Fatal("unrequested lustre present")
	}
	if c.Nodes[0].GPUs != nil {
		t.Fatal("DTN should have no GPUs")
	}
}

func TestDistributeMatchesAwk(t *testing.T) {
	// awk 'NR % NNODE == NODEID': 1-based NR, so with 3 nodes items
	// 1..7 land on nodes 1,2,0,1,2,0,1.
	items := []int{1, 2, 3, 4, 5, 6, 7}
	got := Distribute(items, 3)
	want := [][]int{{3, 6}, {1, 4, 7}, {2, 5}}
	for n := range want {
		if len(got[n]) != len(want[n]) {
			t.Fatalf("node %d got %v, want %v", n, got[n], want[n])
		}
		for i := range want[n] {
			if got[n][i] != want[n][i] {
				t.Fatalf("node %d got %v, want %v", n, got[n], want[n])
			}
		}
	}
}

func TestDistributeSingleNode(t *testing.T) {
	got := Distribute([]string{"a", "b"}, 1)
	if len(got) != 1 || len(got[0]) != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestDistributeInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Distribute(0 nodes) should panic")
		}
	}()
	Distribute([]int{1}, 0)
}

func TestSingleInstanceLaunchRate470(t *testing.T) {
	// Fig 3 calibration: one instance, null tasks, rate ~470/s.
	e := sim.NewEngine(2)
	c := New(e, PerlmutterCPU(), 1)
	n := c.Nodes[0]
	const ntasks = 2000
	var rep *Report
	e.Spawn("driver", func(p *sim.Proc) {
		rep = n.RunParallel(p, InstanceConfig{Jobs: 256}, NullTasks(ntasks))
	})
	end := e.Run()
	rate := float64(ntasks) / end.Seconds()
	if rate < 440 || rate > 500 {
		t.Fatalf("single-instance launch rate = %.0f/s, want ~470/s", rate)
	}
	if rep.Succeeded != ntasks || rep.Failed != 0 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestMultiInstanceCeiling6400(t *testing.T) {
	// Fig 3: 32 instances on one node saturate at ~6,400/s.
	e := sim.NewEngine(3)
	c := New(e, PerlmutterCPU(), 1)
	n := c.Nodes[0]
	const instances = 32
	const perInstance = 400
	for i := 0; i < instances; i++ {
		e.Spawn(fmt.Sprintf("driver%d", i), func(p *sim.Proc) {
			n.RunParallel(p, InstanceConfig{Jobs: 8}, NullTasks(perInstance))
		})
	}
	end := e.Run()
	rate := float64(instances*perInstance) / end.Seconds()
	if rate < 5500 || rate > 7500 {
		t.Fatalf("aggregate launch rate = %.0f/s, want ~6,400/s", rate)
	}
}

func TestInstanceSlotsBounded(t *testing.T) {
	e := sim.NewEngine(4)
	c := New(e, Frontier(), 1)
	n := c.Nodes[0]
	running, peak := 0, 0
	tasks := make([]Task, 40)
	for i := range tasks {
		tasks[i] = Task{Payload: func(p *sim.Proc, tc TaskContext) error {
			running++
			if running > peak {
				peak = running
			}
			p.Sleep(time.Second)
			running--
			return nil
		}}
	}
	e.Spawn("driver", func(p *sim.Proc) {
		n.RunParallel(p, InstanceConfig{Jobs: 8}, tasks)
	})
	e.Run()
	if peak != 8 {
		t.Fatalf("peak concurrency = %d, want 8", peak)
	}
}

func TestInstanceSlotNumbersDistinct(t *testing.T) {
	// Concurrent tasks must hold distinct {%} slot numbers — the
	// invariant GPU isolation depends on.
	e := sim.NewEngine(5)
	c := New(e, Frontier(), 1)
	n := c.Nodes[0]
	held := map[int]bool{}
	tasks := make([]Task, 64)
	for i := range tasks {
		tasks[i] = Task{Payload: func(p *sim.Proc, tc TaskContext) error {
			if tc.Slot < 1 || tc.Slot > 8 {
				t.Errorf("slot %d out of range", tc.Slot)
			}
			if held[tc.Slot] {
				t.Errorf("slot %d held by two concurrent tasks", tc.Slot)
			}
			held[tc.Slot] = true
			p.Sleep(time.Duration(100+tc.Seq) * time.Millisecond)
			held[tc.Slot] = false
			return nil
		}}
	}
	e.Spawn("driver", func(p *sim.Proc) {
		n.RunParallel(p, InstanceConfig{Jobs: 8}, tasks)
	})
	e.Run()
}

func TestInstanceGPUIsolationEndToEnd(t *testing.T) {
	// 8 slots -> 8 GPUs via slot-1 arithmetic: zero contention and
	// perfect weak scaling on the node.
	e := sim.NewEngine(6)
	c := New(e, Frontier(), 1)
	n := c.Nodes[0]
	tasks := make([]Task, 24)
	for i := range tasks {
		tasks[i] = Task{Payload: func(p *sim.Proc, tc TaskContext) error {
			dev, err := tc.Node.GPUs.Device(gpu.SlotDevice(tc.Slot))
			if err != nil {
				return err
			}
			dev.Exec(p, time.Second)
			return nil
		}}
	}
	e.Spawn("driver", func(p *sim.Proc) {
		rep := n.RunParallel(p, InstanceConfig{Jobs: 8}, tasks)
		if rep.Failed != 0 {
			t.Errorf("failures: %+v", rep)
		}
	})
	e.Run()
	if got := n.GPUs.TotalContention(); got != 0 {
		t.Fatalf("GPU contention = %d, want 0 under isolation", got)
	}
	for _, d := range n.GPUs.Devices() {
		if d.Kernels != 3 {
			t.Fatalf("device %d ran %d kernels, want 3 (balanced)", d.ID, d.Kernels)
		}
	}
}

func TestInstanceContainerRuntime(t *testing.T) {
	e := sim.NewEngine(7)
	c := New(e, PerlmutterCPU(), 1)
	n := c.Nodes[0]
	rt := container.PodmanHPC(e)
	var rep *Report
	e.Spawn("driver", func(p *sim.Proc) {
		rep = n.RunParallel(p, InstanceConfig{Jobs: 16, Runtime: rt}, NullTasks(200))
	})
	end := e.Run()
	rate := float64(200) / end.Seconds()
	if rate > 100 {
		t.Fatalf("podman-wrapped rate = %.0f/s, want ~65/s", rate)
	}
	if rep.Launched != 200 {
		t.Fatalf("launched = %d", rep.Launched)
	}
}

func TestInstanceTaskFailureCounted(t *testing.T) {
	e := sim.NewEngine(8)
	c := New(e, Frontier(), 1)
	n := c.Nodes[0]
	boom := errors.New("boom")
	tasks := []Task{
		{Payload: func(p *sim.Proc, tc TaskContext) error { return nil }},
		{Payload: func(p *sim.Proc, tc TaskContext) error { return boom }},
	}
	var results []TaskResult
	e.Spawn("driver", func(p *sim.Proc) {
		rep := n.RunParallel(p, InstanceConfig{
			Jobs:    2,
			Collect: true,
			OnResult: func(r TaskResult) {
				results = append(results, r)
			},
		}, tasks)
		if rep.Succeeded != 1 || rep.Failed != 1 {
			t.Errorf("report: %+v", rep)
		}
	})
	e.Run()
	if len(results) != 2 {
		t.Fatalf("OnResult delivered %d results", len(results))
	}
}

func TestInstanceUseCoresContention(t *testing.T) {
	// Two instances of -j128 on a 128-core node with UseCores: total
	// running payloads capped at 128.
	e := sim.NewEngine(9)
	c := New(e, Frontier(), 1)
	n := c.Nodes[0]
	running, peak := 0, 0
	mkTasks := func(cnt int) []Task {
		tasks := make([]Task, cnt)
		for i := range tasks {
			tasks[i] = Task{Payload: func(p *sim.Proc, tc TaskContext) error {
				running++
				if running > peak {
					peak = running
				}
				p.Sleep(time.Second)
				running--
				return nil
			}}
		}
		return tasks
	}
	for i := 0; i < 2; i++ {
		e.Spawn("driver", func(p *sim.Proc) {
			n.RunParallel(p, InstanceConfig{Jobs: 128, UseCores: true}, mkTasks(256))
		})
	}
	e.Run()
	if peak > 128 {
		t.Fatalf("peak running = %d > 128 cores", peak)
	}
}

func TestInstanceDefaultJobsIsCores(t *testing.T) {
	e := sim.NewEngine(10)
	c := New(e, Frontier(), 1)
	n := c.Nodes[0]
	maxSlot := 0
	tasks := make([]Task, 300)
	for i := range tasks {
		tasks[i] = Task{Payload: func(p *sim.Proc, tc TaskContext) error {
			if tc.Slot > maxSlot {
				maxSlot = tc.Slot
			}
			p.Sleep(time.Second)
			return nil
		}}
	}
	e.Spawn("driver", func(p *sim.Proc) {
		n.RunParallel(p, InstanceConfig{}, tasks)
	})
	e.Run()
	if maxSlot != 128 {
		t.Fatalf("max slot = %d, want 128 (default -j = cores)", maxSlot)
	}
}

func TestSleepTasksWeakScalingLinear(t *testing.T) {
	// Weak scaling shape check: per-node work fixed => makespan roughly
	// constant as nodes grow (Fig 1/Fig 2's expectation).
	makespan := func(nodes int) time.Duration {
		e := sim.NewEngine(12)
		c := New(e, Frontier(), nodes)
		done := sim.NewCounter(e, nodes)
		for _, n := range c.Nodes {
			n := n
			e.Spawn("driver", func(p *sim.Proc) {
				n.RunParallel(p, InstanceConfig{Jobs: 128},
					SleepTasks(128, func(int) time.Duration { return 10 * time.Second }))
				done.Done()
			})
		}
		return e.Run()
	}
	m2, m8 := makespan(2), makespan(8)
	ratio := float64(m8) / float64(m2)
	if ratio > 1.15 {
		t.Fatalf("weak scaling broken: 8 nodes %v vs 2 nodes %v", m8, m2)
	}
}

// Property: Distribute is a partition — every item appears exactly once,
// and node k receives exactly the items with (1-based idx) % n == k.
func TestPropertyDistributePartition(t *testing.T) {
	f := func(n16 uint16, k8 uint8) bool {
		total := int(n16 % 500)
		nodes := int(k8%16) + 1
		items := make([]int, total)
		for i := range items {
			items[i] = i + 1
		}
		parts := Distribute(items, nodes)
		count := 0
		for node, part := range parts {
			for _, v := range part {
				if v%nodes != node {
					return false
				}
				count++
			}
		}
		return count == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
