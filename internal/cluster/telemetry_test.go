package cluster

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

func TestInstanceEmitsLifecycleEvents(t *testing.T) {
	// A simulated instance feeds the same telemetry pipeline a real
	// engine does: RunMetrics attached to the OnEvent hook ends the run
	// with accounting that matches the report exactly.
	e := sim.NewEngine(21)
	c := New(e, Frontier(), 1)
	n := c.Nodes[0]

	reg := telemetry.NewRegistry()
	m := telemetry.NewRunMetrics(reg, 8)
	var mu sync.Mutex
	counts := map[core.EventType]int{}
	onEvent := func(ev core.Event) {
		mu.Lock()
		counts[ev.Type]++
		mu.Unlock()
		m.Observe(ev)
	}

	const ntasks = 120
	var rep *Report
	e.Spawn("driver", func(p *sim.Proc) {
		rep = n.RunParallel(p, InstanceConfig{Jobs: 8, OnEvent: onEvent}, NullTasks(ntasks))
	})
	e.Run()

	if rep.Succeeded != ntasks {
		t.Fatalf("report = %+v", rep)
	}
	if counts[core.EventQueued] != ntasks || counts[core.EventStarted] != ntasks ||
		counts[core.EventFinished] != ntasks {
		t.Fatalf("event counts = %v", counts)
	}
	ok, fail, killed := m.Finished()
	if ok != ntasks || fail != 0 || killed != 0 {
		t.Fatalf("metrics finished = %d/%d/%d", ok, fail, killed)
	}
}

func TestInstanceEventsCarrySimDetail(t *testing.T) {
	e := sim.NewEngine(22)
	c := New(e, Frontier(), 1)
	n := c.Nodes[0]

	var mu sync.Mutex
	var finished []core.Event
	onEvent := func(ev core.Event) {
		if ev.Type != core.EventFinished {
			return
		}
		mu.Lock()
		finished = append(finished, ev)
		mu.Unlock()
	}
	tasks := SleepTasks(16, func(i int) time.Duration { return time.Second })
	e.Spawn("driver", func(p *sim.Proc) {
		n.RunParallel(p, InstanceConfig{Jobs: 4, OnEvent: onEvent}, tasks)
	})
	e.Run()

	if len(finished) != 16 {
		t.Fatalf("finished events = %d", len(finished))
	}
	for _, ev := range finished {
		if !ev.OK || ev.ExitCode != 0 {
			t.Fatalf("event = %+v", ev)
		}
		if ev.Host != n.Hostname() {
			t.Fatalf("host = %q, want %q", ev.Host, n.Hostname())
		}
		if ev.Slot < 1 || ev.Slot > 4 {
			t.Fatalf("slot = %d", ev.Slot)
		}
		if ev.Duration < time.Second {
			t.Fatalf("duration = %v, want >= task sleep", ev.Duration)
		}
		if ev.DispatchDelay <= 0 {
			t.Fatalf("dispatch delay = %v, want > 0 (sim pays dispatch cost)", ev.DispatchDelay)
		}
		// Virtual timestamps map onto the Unix epoch.
		if ev.Time.Before(time.Unix(0, 0)) || ev.Time.After(time.Unix(0, 0).Add(time.Hour)) {
			t.Fatalf("event time = %v, want near epoch", ev.Time)
		}
	}
}

func TestInstanceEventsOnDeadNode(t *testing.T) {
	// Tasks lost to a node crash still emit finished events — with
	// OK=false — so telemetry totals always match launched counts.
	e := sim.NewEngine(23)
	c := New(e, Frontier(), 1)
	n := c.Nodes[0]
	e.At(sim.Time(500*time.Millisecond), n.Fail)

	var mu sync.Mutex
	counts := map[core.EventType]int{}
	okCount := 0
	onEvent := func(ev core.Event) {
		mu.Lock()
		counts[ev.Type]++
		if ev.Type == core.EventFinished && ev.OK {
			okCount++
		}
		mu.Unlock()
	}
	tasks := SleepTasks(12, func(i int) time.Duration { return 200 * time.Millisecond })
	var rep *Report
	e.Spawn("driver", func(p *sim.Proc) {
		rep = n.RunParallel(p, InstanceConfig{Jobs: 2, OnEvent: onEvent}, tasks)
	})
	e.Run()

	if rep.Failed == 0 {
		t.Fatalf("crash produced no failures: %+v", rep)
	}
	if counts[core.EventFinished] != 12 {
		t.Fatalf("finished events = %d, want 12 (every launched task reports)", counts[core.EventFinished])
	}
	if okCount != rep.Succeeded {
		t.Fatalf("ok events = %d, report says %d", okCount, rep.Succeeded)
	}
}
