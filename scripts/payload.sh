#!/bin/bash
# The Fig 1 payload: record hostname and timestamp for validation and
# performance measurement, writing to node-local storage per best
# practice (stage to Lustre at job end).
out="${NVME_DIR:-/tmp}/fig1.$SLURM_JOB_ID.$(hostname).out"
echo "$(hostname) $(date +%s.%N) $1" >> "$out"
