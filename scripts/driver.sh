#!/bin/bash
# The paper's Listing 1, verbatim in structure, with gopar as the
# launcher: shard an input file across the nodes of a Slurm allocation
# (awk 'NR % NNODE == NODEID') and run 128-wide parallel on each node.
#
# Invoke inside a Slurm job:   srun -N"$SLURM_NNODES" ./driver.sh inputs.txt
set -euo pipefail
cat "$1" | \
awk -v NNODE="$SLURM_NNODES" \
    -v NODEID="$SLURM_NODEID" \
    'NR % NNODE == NODEID' | \
gopar -j 128 -quiet './payload.sh {}'
