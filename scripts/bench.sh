#!/bin/sh
# bench.sh — perf harness wrapper.
#
# Runs the render/dispatch/pool/real-process microbenchmarks (including
# the WAL-overhead pair that gates the write-ahead log's dispatch tax
# and the protocol v3 wire codec + loopback pair that gates the binary
# data plane's 0-alloc and jobs/s budgets) plus the simulation-kernel
# suite (events/s, procs/s, flow tasks/s, the sharded-kernel events
# benchmark, and the full-scale Fig 1 point in serial and 4-shard modes
# — the pair behind the shardGuard speedup/overhead gate) and writes
# BENCH_pr10.json. With a baseline
# report as $1, also fails on regression (ns/op growth, allocs/op
# growth, or any */s throughput drop beyond tolerance):
#
#   scripts/bench.sh                      # record BENCH_pr10.json
#   scripts/bench.sh BENCH_baseline.json  # record + gate vs baseline
#
# Env:
#   BENCH_OUT       output path        (default BENCH_pr10.json)
#   BENCH_TIME      go -benchtime      (default: go's 1s; CI uses 1000x;
#                   the full-scale Fig 1 points are always pinned to 1x)
#   BENCH_TOLERANCE fractional slack in gate mode (default 0.25)
set -eu
cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-BENCH_pr10.json}"
ARGS="-out $OUT"
[ -n "${BENCH_TIME:-}" ] && ARGS="$ARGS -benchtime $BENCH_TIME"
[ $# -ge 1 ] && ARGS="$ARGS -check $1 -tolerance ${BENCH_TOLERANCE:-0.25}"

# shellcheck disable=SC2086
go run ./cmd/benchjson $ARGS
echo "wrote $OUT"
