#!/bin/sh
# bench.sh — dispatch hot-path perf harness wrapper.
#
# Runs the render/dispatch/pool/real-process microbenchmarks and writes
# BENCH_pr4.json (procs/s, ns/job, allocs/job per benchmark). With a
# baseline report as $1, also fails on regression:
#
#   scripts/bench.sh                      # record BENCH_pr4.json
#   scripts/bench.sh BENCH_baseline.json  # record + gate vs baseline
#
# Env:
#   BENCH_OUT       output path        (default BENCH_pr4.json)
#   BENCH_TIME      go -benchtime      (default: go's 1s; CI uses 100x)
#   BENCH_TOLERANCE fractional ns/op slack in gate mode (default 0.25)
set -eu
cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-BENCH_pr4.json}"
ARGS="-out $OUT"
[ -n "${BENCH_TIME:-}" ] && ARGS="$ARGS -benchtime $BENCH_TIME"
[ $# -ge 1 ] && ARGS="$ARGS -check $1 -tolerance ${BENCH_TOLERANCE:-0.25}"

# shellcheck disable=SC2086
go run ./cmd/benchjson $ARGS
echo "wrote $OUT"
