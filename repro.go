// Package repro is gparallel: a GNU-Parallel-class parallel process
// launcher for high-throughput HPC workflows, with a calibrated
// discrete-event substrate that reproduces the evaluation of
// "Enabling Low-Overhead HT-HPC Workflows at Extreme Scale using GNU
// Parallel" (SC 2024).
//
// The stable entry points re-exported here cover the common library use:
// building a Spec (command template + slots + policies), choosing a
// Runner (real processes or in-process Go functions), composing input
// Sources, and running the Engine. Substrate and experiment packages
// live under internal/ and are exercised through cmd/benchall and the
// root benchmarks.
//
//	spec, _ := repro.NewSpec("gzip -9 {}", 8)
//	eng, _ := repro.NewEngine(spec, nil) // nil = real processes
//	stats, _, err := eng.Run(ctx, repro.Literal(files...))
package repro

import (
	"context"
	"io"

	"repro/internal/args"
	"repro/internal/core"
	"repro/internal/tmpl"
)

// Re-exported core types. See internal/core for full documentation.
type (
	// Spec configures an engine run (slots, template, ordering,
	// retries, halt policy, joblog, resume...).
	Spec = core.Spec
	// Engine executes jobs from a Source across a slot pool.
	Engine = core.Engine
	// Job is one unit of work.
	Job = core.Job
	// Result is one completed job.
	Result = core.Result
	// Stats summarizes a run.
	Stats = core.Stats
	// Runner executes one job attempt.
	Runner = core.Runner
	// ExecRunner runs jobs as real OS processes.
	ExecRunner = core.ExecRunner
	// FuncRunner adapts a Go function as the job payload.
	FuncRunner = core.FuncRunner
	// HaltPolicy mirrors GNU Parallel's --halt.
	HaltPolicy = core.HaltPolicy
	// Event is one job-lifecycle event, delivered via Spec.OnEvent
	// (see internal/telemetry for the bus, metrics, and sinks).
	Event = core.Event
	// EventType discriminates lifecycle events.
	EventType = core.EventType
	// Source yields job input records.
	Source = args.Source
	// Template is a parsed replacement-string command template.
	Template = tmpl.Template
)

// Halt policy aggressiveness levels.
const (
	HaltNever = core.HaltNever
	HaltSoon  = core.HaltSoon
	HaltNow   = core.HaltNow
)

// Lifecycle event types (Event.Type).
const (
	EventQueued   = core.EventQueued
	EventStarted  = core.EventStarted
	EventRetried  = core.EventRetried
	EventFinished = core.EventFinished
	EventKilled   = core.EventKilled
)

// NewSpec builds a Spec with GNU-Parallel-like defaults for the command
// template cmd and the given slot count.
func NewSpec(cmd string, jobs int) (*Spec, error) { return core.NewSpec(cmd, jobs) }

// NewEngine pairs a Spec with a Runner; nil runner = real processes.
func NewEngine(spec *Spec, runner Runner) (*Engine, error) { return core.NewEngine(spec, runner) }

// ParseTemplate compiles a replacement-string template ({}, {.}, {/},
// {#}, {%}, {n}...).
func ParseTemplate(s string) (*Template, error) { return tmpl.Parse(s) }

// Input source constructors (see internal/args).
var (
	// Literal yields one record per item (the ::: form).
	Literal = args.Literal
	// FromReader yields one record per line.
	FromReader = args.FromReader
	// FromFile yields one record per line of a file (the :::: form).
	FromFile = args.FromFile
	// Chan yields values from a channel until closed.
	Chan = args.Chan
	// Cross combines sources as a cartesian product (multiple :::).
	Cross = args.Cross
	// Zip links sources positionally (:::+).
	Zip = args.Zip
	// ChunkN regroups single values into records of up to n (-N).
	ChunkN = args.ChunkN
	// FollowFile tails a file like `tail -n+0 -f` (queue-file linking).
	FollowFile = args.FollowFile
)

// Run is the one-call convenience: execute cmd for each input with the
// given parallelism, writing grouped stdout to out (nil discards).
// Equivalent to `parallel -j<jobs> <cmd> ::: <inputs...>`.
func Run(ctx context.Context, cmd string, jobs int, out io.Writer, inputs ...string) (Stats, error) {
	spec, err := NewSpec(cmd, jobs)
	if err != nil {
		return Stats{}, err
	}
	spec.Out = out
	eng, err := NewEngine(spec, nil)
	if err != nil {
		return Stats{}, err
	}
	stats, _, err := eng.Run(ctx, Literal(inputs...))
	return stats, err
}
