package repro_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro"
)

func TestRunConvenience(t *testing.T) {
	var buf bytes.Buffer
	stats, err := repro.Run(context.Background(), "echo hello {}", 4, &buf, "a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Succeeded != 3 {
		t.Fatalf("stats = %+v", stats)
	}
	out := buf.String()
	for _, want := range []string{"hello a", "hello b", "hello c"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output %q missing %q", out, want)
		}
	}
}

func TestFacadeSpecEngine(t *testing.T) {
	spec, err := repro.NewSpec("echo {#}:{}", 2)
	if err != nil {
		t.Fatal(err)
	}
	spec.KeepOrder = true
	var buf bytes.Buffer
	spec.Out = &buf
	eng, err := repro.NewEngine(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	stats, _, err := eng.Run(context.Background(), repro.Literal("x", "y"))
	if err != nil || stats.Succeeded != 2 {
		t.Fatalf("stats=%+v err=%v", stats, err)
	}
	if got := buf.String(); got != "1:x\n2:y\n" {
		t.Fatalf("output = %q", got)
	}
}

func TestFacadeFuncRunnerAndCross(t *testing.T) {
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	var seen []string
	runner := repro.FuncRunner(func(ctx context.Context, job *repro.Job) ([]byte, error) {
		<-mu
		seen = append(seen, strings.Join(job.Args, "-"))
		mu <- struct{}{}
		return nil, nil
	})
	spec, _ := repro.NewSpec("", 4)
	eng, _ := repro.NewEngine(spec, runner)
	stats, _, err := eng.Run(context.Background(),
		repro.Cross(repro.Literal("a", "b"), repro.Literal("1", "2")))
	if err != nil || stats.Succeeded != 4 {
		t.Fatalf("stats=%+v err=%v", stats, err)
	}
	want := map[string]bool{"a-1": true, "a-2": true, "b-1": true, "b-2": true}
	for _, s := range seen {
		if !want[s] {
			t.Fatalf("unexpected combination %q", s)
		}
	}
}

func TestParseTemplateFacade(t *testing.T) {
	tpl, err := repro.ParseTemplate("cmd {.} {%}")
	if err != nil {
		t.Fatal(err)
	}
	if !tpl.HasInputPlaceholder() || !tpl.HasSlotPlaceholder() {
		t.Fatal("template introspection broken")
	}
}
