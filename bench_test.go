// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark wraps the corresponding driver in
// internal/experiments (Quick scale so `go test -bench=.` completes in
// minutes; run cmd/benchall for full scale) and reports the headline
// quantity the paper gives for that figure as a custom metric.
package repro_test

import (
	"context"
	"testing"
	"time"

	"repro"
	"repro/internal/experiments"
)

func benchOpts() experiments.Options {
	return experiments.Options{Seed: 2024, Quick: true}
}

// BenchmarkFig1WeakScaling: Fig 1 — weak scaling, per-task completion
// distribution; reports the largest run's max completion (paper: 561 s at
// 9,000 nodes; Quick runs at 1/10 node count).
func BenchmarkFig1WeakScaling(b *testing.B) {
	var maxS float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig1WeakScaling(benchOpts())
		maxS = rows[len(rows)-1].Max
	}
	b.ReportMetric(maxS, "max_completion_s")
}

// BenchmarkFig2GPUScaling: Fig 2 — Celeritas GPU weak scaling; reports
// makespan spread across node counts (paper: <10 s).
func BenchmarkFig2GPUScaling(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig2GPUScaling(benchOpts())
		lo, hi := rows[0].MakespanS, rows[0].MakespanS
		for _, r := range rows {
			if r.MakespanS < lo {
				lo = r.MakespanS
			}
			if r.MakespanS > hi {
				hi = r.MakespanS
			}
		}
		spread = hi - lo
	}
	b.ReportMetric(spread, "makespan_spread_s")
}

// BenchmarkFig3LaunchRate: Fig 3 — simulated launch-rate ceilings
// (paper: 470/s single instance, ~6,400/s aggregate).
func BenchmarkFig3LaunchRate(b *testing.B) {
	single, saturated := time.Duration(0), time.Duration(0)
	for i := 0; i < b.N; i++ {
		single, saturated = experiments.FullUtilizationTaskFloor(benchOpts())
	}
	b.ReportMetric(single.Seconds()*1000, "single_floor_ms")
	b.ReportMetric(saturated.Seconds()*1000, "saturated_floor_ms")
}

// BenchmarkFig3RealDispatch: the real-execution counterpart of Fig 3 —
// how fast this library actually launches /bin/true processes on this
// machine (GNU Parallel's perl implementation measured 470/s).
func BenchmarkFig3RealDispatch(b *testing.B) {
	inputs := make([]string, b.N)
	spec, err := repro.NewSpec("true", 8)
	if err != nil {
		b.Fatal(err)
	}
	spec.AppendArgsIfNoPlaceholder = false
	eng, err := repro.NewEngine(spec, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	start := time.Now()
	stats, _, err := eng.Run(context.Background(), repro.Literal(inputs...))
	if err != nil || stats.Succeeded != b.N {
		b.Fatalf("stats=%+v err=%v", stats, err)
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "procs/s")
}

// BenchmarkFig4Shifter: Fig 4 — Shifter container launch ceiling
// (paper: ~5,200/s, 19% over bare metal).
func BenchmarkFig4Shifter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = mustRun(b, "fig4")
	}
}

// BenchmarkFig5Podman: Fig 5 — Podman-HPC ceiling (~65/s) and failures.
func BenchmarkFig5Podman(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = mustRun(b, "fig5")
	}
}

// BenchmarkWMSOverhead: §II — central WMS orchestration overhead vs
// decentralized dispatch (paper: 500s@50k, 5,000s@100k vs 561s@1.152M).
func BenchmarkWMSOverhead(b *testing.B) {
	var at50k float64
	for i := 0; i < b.N; i++ {
		rows := experiments.WMSComparison(benchOpts())
		for _, r := range rows {
			if r.Tasks == 50_000 {
				at50k = r.WMSOverheadS
			}
		}
	}
	b.ReportMetric(at50k, "wms_overhead_s_at_50k")
}

// BenchmarkFig7DarshanPipeline: Fig 7 / §IV-B — staged NVMe pipeline vs
// Lustre-only (paper: 358 vs 430 min, 17% improvement).
func BenchmarkFig7DarshanPipeline(b *testing.B) {
	var improvement float64
	for i := 0; i < b.N; i++ {
		res := experiments.Fig7DarshanPipeline(benchOpts())
		base := res.LustreOnly.Total.Minutes()
		improvement = (base - res.Staged.Total.Minutes()) / base * 100
	}
	b.ReportMetric(improvement, "improvement_%")
}

// BenchmarkSrunVsParallel: §IV-B Listings 4/5 — srun loop vs parallel
// one-liner launch overhead.
func BenchmarkSrunVsParallel(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows := experiments.SrunVsParallel(benchOpts())
		ratio = rows[0].MakespanS / rows[1].MakespanS
	}
	b.ReportMetric(ratio, "srun_over_parallel")
}

// BenchmarkDataMotion: §IV-E — 256-stream DTN transfer (paper: ~200x
// sequential, >10x WMS protocol, 2,385 Mb/s per node).
func BenchmarkDataMotion(b *testing.B) {
	var speedup, mbps float64
	for i := 0; i < b.N; i++ {
		rows := experiments.DataMotion(benchOpts())
		speedup = rows[2].Speedup
		mbps = rows[2].NodeMbpsMean
	}
	b.ReportMetric(speedup, "speedup_vs_seq")
	b.ReportMetric(mbps, "node_Mbps")
}

// BenchmarkFetchProcess: §IV-A — queue-linked overlap vs barrier.
func BenchmarkFetchProcess(b *testing.B) {
	var saved float64
	for i := 0; i < b.N; i++ {
		rows := experiments.FetchProcess(benchOpts())
		saved = rows[1].MakespanS - rows[0].MakespanS
	}
	b.ReportMetric(saved, "overlap_savings_s")
}

// BenchmarkGPUIsolation: §IV-D — slot-pinned GPU binding vs none.
func BenchmarkGPUIsolation(b *testing.B) {
	var contention float64
	for i := 0; i < b.N; i++ {
		rows := experiments.GPUIsolation(benchOpts())
		contention = float64(rows[1].Contention)
	}
	b.ReportMetric(contention, "naive_contention")
}

// BenchmarkForgeCuration: §IV-C — real parallel text curation.
func BenchmarkForgeCuration(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		rows := experiments.ForgeCuration(benchOpts())
		rate = rows[len(rows)-1].DocsPerS
	}
	b.ReportMetric(rate, "docs/s")
}

// Ablation benches (DESIGN.md §4).

func BenchmarkAblationStaticSplit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = mustRun(b, "ablation-static")
	}
}

func BenchmarkAblationCentral(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = mustRun(b, "ablation-central")
	}
}

func BenchmarkAblationDispatchCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = mustRun(b, "ablation-dispatch")
	}
}

func BenchmarkAblationNVMeStaging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = mustRun(b, "ablation-nvme")
	}
}

// BenchmarkKeepOrder measures the real engine's keep-order buffering
// overhead against unordered emission.
func BenchmarkKeepOrder(b *testing.B) {
	for _, keep := range []bool{false, true} {
		name := "unordered"
		if keep {
			name = "keep-order"
		}
		b.Run(name, func(b *testing.B) {
			runner := repro.FuncRunner(func(ctx context.Context, job *repro.Job) ([]byte, error) {
				return nil, nil
			})
			items := make([]string, b.N)
			spec, _ := repro.NewSpec("", 8)
			spec.KeepOrder = keep
			eng, _ := repro.NewEngine(spec, runner)
			b.ResetTimer()
			if _, _, err := eng.Run(context.Background(), repro.Literal(items...)); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func mustRun(b *testing.B, id string) string {
	b.Helper()
	e, ok := experiments.Get(id)
	if !ok {
		b.Fatalf("experiment %q missing", id)
	}
	return e.Run(benchOpts()).String()
}
